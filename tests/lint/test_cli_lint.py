"""CLI surface of the static analyses: ``repro lint``, the baseline
ratchet, ``rules --verify`` verdicts, and ``compile --verify-each``."""

import json

import repro.__main__ as cli
from repro.__main__ import main


class TestLintCommand:
    def test_shipped_rulebases_clean(self, capsys):
        assert main(["lint"]) == 0
        out = capsys.readouterr().out
        assert "lifting (hand)" in out
        assert "0 errors" in out

    def test_json_format(self, capsys):
        assert main(["lint", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["errors"] == 0
        assert payload["warnings"] == 0
        assert isinstance(payload["diagnostics"], list)
        assert "lifting (hand)" in payload["rule_counts"]

    def test_baseline_reports_stale_entries(self, tmp_path, capsys):
        baseline = tmp_path / "lint_baseline.txt"
        baseline.write_text(
            "# fixture\nL105 lifting (hand):no-such-rule\n"
        )
        # A stale entry is reported but never fails the run.
        assert main(["lint", "--baseline", str(baseline)]) == 0
        out = capsys.readouterr().out
        assert "trim the baseline" in out
        assert "L105 lifting (hand):no-such-rule" in out

    def test_new_warning_fails_against_baseline(
        self, tmp_path, capsys, monkeypatch
    ):
        from repro.lint import LintReport
        from repro.lint.diagnostics import Diagnostic

        fake = LintReport(
            diagnostics=[
                Diagnostic("L105", "some-rule", "shadowed", "lifting (hand)")
            ],
            rule_counts={"lifting (hand)": 1},
        )
        import repro.lint as lint_mod

        monkeypatch.setattr(
            lint_mod, "lint_all_rulebases", lambda coverage_fires=None: fake
        )
        baseline = tmp_path / "empty.txt"
        baseline.write_text("# nothing tolerated\n")
        assert main(["lint", "--baseline", str(baseline)]) == 1
        out = capsys.readouterr().out
        assert "new lint warnings" in out
        assert "L105 lifting (hand):some-rule" in out
        # The same warning listed in the baseline is tolerated.
        baseline.write_text("L105 lifting (hand):some-rule\n")
        assert main(["lint", "--baseline", str(baseline)]) == 0


class TestLintBackendFlags:
    def test_machine_and_targets_clean(self, capsys):
        assert main(["lint", "--machine", "--targets"]) == 0
        out = capsys.readouterr().out
        assert "containment proved on 48/48" in out
        assert "target lint:" in out
        assert "0 errors" in out

    def _fake_machine_report(self, diagnostics=()):
        from repro.lint import MachineLintReport

        return MachineLintReport(
            diagnostics=list(diagnostics),
            cells={
                "mean@arm-neon": {
                    "diagnostics": [d.to_dict() for d in diagnostics],
                    "containment": {
                        "source": [0, 255], "machine": [0, 255],
                        "contained": True,
                    },
                    "pressure": {
                        "max_live": 3, "at_index": 0,
                        "timeline": [3], "peak_values": [],
                    },
                    "mnemonics": ["urhadd"],
                    "instructions": 1,
                }
            },
            workloads=["mean"],
            targets=["arm-neon"],
        )

    def test_machine_json_payload(self, capsys, monkeypatch):
        import repro.lint as lint_mod

        fake = self._fake_machine_report()
        monkeypatch.setattr(
            lint_mod, "run_machine_lint", lambda **kw: fake
        )
        assert main(["lint", "--machine", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["machine"]["contained_cells"] == 1
        assert payload["machine"]["errors"] == 0
        assert "targets" not in payload

    def test_machine_warning_ratchets(self, tmp_path, capsys, monkeypatch):
        from repro.lint.diagnostics import Diagnostic

        import repro.lint as lint_mod

        warn = Diagnostic(
            "M004", "v0 = urhadd", "result never read", "mean@arm-neon"
        )
        fake = self._fake_machine_report([warn])
        monkeypatch.setattr(
            lint_mod, "run_machine_lint", lambda **kw: fake
        )
        baseline = tmp_path / "machinelint_baseline.txt"
        baseline.write_text("# nothing tolerated\n")
        assert main(
            ["lint", "--machine", "--baseline", str(baseline)]
        ) == 1
        out = capsys.readouterr().out
        assert "M004 mean@arm-neon:v0 = urhadd" in out
        baseline.write_text("M004 mean@arm-neon:v0 = urhadd\n")
        assert main(
            ["lint", "--machine", "--baseline", str(baseline)]
        ) == 0

    def test_machine_error_fails_regardless_of_baseline(
        self, tmp_path, monkeypatch
    ):
        from repro.lint.diagnostics import Diagnostic

        import repro.lint as lint_mod

        err = Diagnostic(
            "M007", "urhadd", "interval escapes", "mean@arm-neon"
        )
        fake = self._fake_machine_report([err])
        monkeypatch.setattr(
            lint_mod, "run_machine_lint", lambda **kw: fake
        )
        baseline = tmp_path / "machinelint_baseline.txt"
        baseline.write_text("M007 mean@arm-neon:urhadd\n")
        assert main(
            ["lint", "--machine", "--baseline", str(baseline)]
        ) == 1


class TestRulesVerify:
    def test_per_rule_verdicts_ok(self, capsys, monkeypatch):
        import repro.verify as verify_mod

        class _OkReport:
            ok = True
            counterexample = None

        monkeypatch.setattr(
            verify_mod, "verify_rule",
            lambda rule, **kw: _OkReport(),
        )
        assert main(["rules", "--verify"]) == 0
        out = capsys.readouterr().out
        assert "-- verifying lifting (hand)" in out
        assert "ok  " in out and "[hand]" in out
        assert "all OK" in out
        assert "lowering rule sets are not sample-verified" in out

    def test_failing_rule_exits_nonzero(self, capsys, monkeypatch):
        import repro.verify as verify_mod

        class _Report:
            def __init__(self, ok):
                self.ok = ok
                self.counterexample = None if ok else "x=3 -> 7 != 9"

        calls = {"n": 0}

        def fake_verify(rule, **kw):
            calls["n"] += 1
            return _Report(ok=calls["n"] != 1)  # first rule fails

        monkeypatch.setattr(verify_mod, "verify_rule", fake_verify)
        assert main(["rules", "--verify"]) == 1
        out = capsys.readouterr().out
        assert "FAIL" in out
        assert "counterexample: x=3 -> 7 != 9" in out
        assert "1 FAILED" in out


class TestCompileVerifyEach:
    def test_clean_compile(self, capsys):
        assert main(
            ["compile", "sobel3x3", "--target", "arm-neon", "--verify-each"]
        ) == 0

    def test_broken_pass_reported(self, capsys, monkeypatch):
        from repro import pipeline
        from repro.passes import PassVerificationError

        def boom(*a, **kw):
            raise PassVerificationError("lift", [])

        # CompilerSession imports pitchfork_compile from the pipeline
        # module at call time, so patch it at the source.
        monkeypatch.setattr(pipeline, "pitchfork_compile", boom)
        assert main(
            ["compile", "add", "--target", "arm-neon", "--verify-each"]
        ) == 1
        err = capsys.readouterr().err
        assert "VERIFY-EACH FAILED" in err
        assert "lift" in err
