"""``verify_each`` pass validation: the full paper matrix compiles with
zero violations, and a deliberately-broken pass is caught *and named*."""

import pytest

from repro.ir import builders as h
from repro.ir import expr as E
from repro.ir.types import U8, U16
from repro.passes import Pass, PassManager, PassVerificationError
from repro.pipeline import pitchfork_compile
from repro.targets import PAPER_TARGETS
from repro.workloads import all_workloads


class TestPaperMatrixVerifies:
    @pytest.mark.parametrize("target_name", PAPER_TARGETS)
    def test_all_workloads_verify_on(self, target_name):
        # Acceptance criterion: 16 workloads x 3 paper targets, zero
        # well-formedness violations at every pass boundary.
        for wl in all_workloads():
            prog = pitchfork_compile(
                wl.expr, target_name, verify_each=True
            )
            assert prog is not None, wl.name


class _CorruptingPass(Pass):
    """Rebuilds the tree with one ill-typed node, bypassing validation —
    the exact bug class verify_each exists to localize."""

    name = "corrupt"

    def run(self, expr, ctx):
        bad = E.Add.__new__(E.Add)
        object.__setattr__(bad, "a", h.var("x", U8))
        object.__setattr__(bad, "b", h.var("w", U16))
        return bad


class _IdentityPass(Pass):
    name = "identity"

    def run(self, expr, ctx):
        return expr


class TestBrokenPassIsNamed:
    def test_corrupting_pass_blamed(self):
        pm = PassManager(
            [_IdentityPass(), _CorruptingPass(), _IdentityPass()],
            verify_each=True,
        )
        with pytest.raises(PassVerificationError) as exc:
            pm.run(h.var("x", U8) + 1)
        assert exc.value.pass_name == "corrupt"
        assert any(d.code == "L001" for d in exc.value.diagnostics)
        assert "corrupt" in str(exc.value)

    def test_pre_broken_input_blamed_on_caller(self):
        bad = E.Add.__new__(E.Add)
        object.__setattr__(bad, "a", h.var("x", U8))
        object.__setattr__(bad, "b", h.var("w", U16))
        pm = PassManager([_IdentityPass()], verify_each=True)
        with pytest.raises(PassVerificationError) as exc:
            pm.run(bad)
        assert exc.value.pass_name == "<input>"

    def test_disabled_by_default(self):
        pm = PassManager([_CorruptingPass()])
        out, _stats = pm.run(h.var("x", U8) + 1)
        # No verification: the corrupt tree flows through silently.
        assert isinstance(out, E.Add)
