"""Well-formedness verifier: every L0xx diagnostic fires, and every
legitimately-constructed tree is clean.

Constructors already reject ill-typed *concrete* operands, so broken
trees are forged by bypassing ``__init__`` — exactly the state a buggy
pass could produce via direct field surgery or a wrong rebuild.
"""

import pytest

from repro import fpir as F
from repro.ir import builders as h
from repro.ir import expr as E
from repro.ir.types import BOOL, I16, I8, U16, U32, U8
from repro.lint import WellFormednessError, assert_well_formed, verify_expr
from repro.trs.pattern import PConst, TVar, Wild


def forge(cls, **fields):
    """Build a node without running its validating constructor."""
    node = cls.__new__(cls)
    for name, value in fields.items():
        object.__setattr__(node, name, value)
    return node


X8 = h.var("x", U8)
Y8 = h.var("y", U8)
X16 = h.var("w", U16)


def codes(expr):
    return sorted(d.code for d in verify_expr(expr))


class TestCleanTrees:
    def test_simple_arith_is_clean(self):
        e = E.Select(E.LT(X8, Y8), X8 + 1, Y8)
        assert verify_expr(e) == []

    def test_fpir_is_clean(self):
        e = F.SaturatingNarrow(F.WideningAdd(X8, Y8))
        assert verify_expr(e) == []

    def test_every_workload_is_clean(self):
        from repro.workloads import all_workloads

        for wl in all_workloads():
            assert verify_expr(wl.expr) == [], wl.name

    def test_shared_subtrees_checked_once(self):
        # A wide DAG of shared nodes must not blow up the walk.
        e = X8
        for _ in range(64):
            e = E.Add(e, e)
        assert verify_expr(e) == []


class TestDiagnosticsFire:
    def test_L001_operand_type_mismatch(self):
        bad = forge(E.Add, a=X8, b=X16)
        assert codes(bad) == ["L001"]

    def test_L001_shift_width_mismatch(self):
        # Shifts tolerate a sign mismatch but never a width mismatch.
        assert codes(forge(E.Shl, a=X8, b=X16)) == ["L001"]
        assert verify_expr(E.Shl(X8, h.var("s", I8))) == []

    def test_L002_bool_arith_operand(self):
        cond = E.LT(X8, Y8)
        assert codes(forge(E.Add, a=cond, b=cond)) == ["L002"]
        assert codes(forge(E.Neg, value=cond)) == ["L002"]

    def test_L002_not_of_non_bool(self):
        assert codes(forge(E.Not, value=X8)) == ["L002"]

    def test_L003_cast_to_bool(self):
        assert codes(forge(E.Cast, to=BOOL, value=X8)) == ["L003"]

    def test_L003_reinterpret_width_mismatch(self):
        assert codes(forge(E.Reinterpret, to=U32, value=X8)) == ["L003"]

    def test_L004_fpir_signature_violations(self):
        assert codes(forge(F.WideningAdd, a=X8, b=X16)) == ["L004"]
        assert codes(forge(F.SaturatingNarrow, a=X8)) == ["L004"]
        assert codes(
            forge(F.ExtendingAdd, a=X8, b=Y8)  # a must be widen(b)
        ) == ["L004"]
        assert codes(
            forge(F.MulShr, a=X8, b=Y8, shift=h.var("s", U16))
        ) == ["L004"]

    def test_L005_select_invariants(self):
        assert codes(forge(E.Select, cond=X8, t=Y8, f=Y8)) == ["L005"]
        bad_branches = forge(
            E.Select, cond=E.LT(X8, Y8), t=X8, f=X16
        )
        assert codes(bad_branches) == ["L005"]

    def test_L006_pattern_leaf_in_concrete_tree(self):
        # A leaked wildcard (failed instantiation) must be caught even
        # when its type pattern happens to be a concrete type.
        assert codes(E.Add(Wild("x", U8), h.const(U8, 1))) == ["L006"]
        assert codes(E.Add(PConst(U8, 3), h.const(U8, 1))) == ["L006"]

    def test_L006_symbolic_type_in_concrete_tree(self):
        assert "L006" in codes(E.Neg(Wild("x", TVar("T"))))

    def test_L007_constant_out_of_range(self):
        assert codes(forge(E.Const, _type=U8, value=999)) == ["L007"]
        assert codes(forge(E.Const, _type=I8, value=-200)) == ["L007"]

    def test_nested_violation_found_deep_in_tree(self):
        bad = forge(E.Add, a=X8, b=X16)
        tree = E.Select(E.LT(X16, X16), forge(E.Cast, to=U16, value=bad), X16)
        assert codes(tree) == ["L001"]


class TestAssertWellFormed:
    def test_raises_with_location(self):
        with pytest.raises(WellFormednessError) as exc:
            assert_well_formed(forge(E.Add, a=X8, b=X16), where="lift")
        assert "lift" in str(exc.value)
        assert "L001" in str(exc.value)

    def test_clean_tree_passes(self):
        assert_well_formed(X8 + 1)


class TestEveryFpirClassHasAVerifierArm:
    def test_no_fpir_class_falls_through(self):
        # The verifier's fallback arm reports (rather than accepts) FPIR
        # classes it does not know; assert no *shipped* class hits it by
        # building a valid instance of each and checking it is clean.
        samples = {
            "widening_add": F.WideningAdd(X8, Y8),
            "widening_sub": F.WideningSub(X8, Y8),
            "widening_mul": F.WideningMul(X8, h.var("s", I8)),
            "widening_shl": F.WideningShl(X8, h.var("s", I8)),
            "widening_shr": F.WideningShr(X8, h.var("s", I8)),
            "extending_add": F.ExtendingAdd(X16, Y8),
            "extending_sub": F.ExtendingSub(X16, Y8),
            "extending_mul": F.ExtendingMul(X16, Y8),
            "abs": F.Abs(h.var("a", I16)),
            "absd": F.Absd(X8, Y8),
            "saturating_cast": F.SaturatingCast(U8, X16),
            "saturating_narrow": F.SaturatingNarrow(X16),
            "saturating_add": F.SaturatingAdd(X8, Y8),
            "saturating_sub": F.SaturatingSub(X8, Y8),
            "halving_add": F.HalvingAdd(X8, Y8),
            "halving_sub": F.HalvingSub(X8, Y8),
            "rounding_halving_add": F.RoundingHalvingAdd(X8, Y8),
            "rounding_shl": F.RoundingShl(X8, h.var("s", I8)),
            "rounding_shr": F.RoundingShr(X8, h.var("s", I8)),
            "mul_shr": F.MulShr(X8, Y8, h.const(U8, 2)),
            "rounding_mul_shr": F.RoundingMulShr(X8, Y8, h.const(U8, 2)),
            "saturating_shl": F.SaturatingShl(X8, h.var("s", I8)),
        }
        assert set(samples) == set(F.FPIR_OPS)
        for name, node in samples.items():
            assert verify_expr(node) == [], name
