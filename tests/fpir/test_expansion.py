"""Properties of the Table 1 definitional expansion machinery."""

import pytest
from hypothesis import given, settings
import hypothesis.strategies as st

from repro import fpir as F
from repro.fpir.semantics import expand, expand_fully, saturate_bounds_clamp
from repro.interp import evaluate
from repro.ir import builders as h
from repro.ir import expr as E
from repro.ir.types import ARITH_TYPES, I8, I16, U8, U16, ScalarType

a = h.var("a", U8)
b = h.var("b", U8)


def _sample_node(cls):
    """A representative concrete instance of each FPIR op class."""
    x16, y16 = h.var("x", I16), h.var("y", I16)
    w = h.var("w", U16)
    if cls in (F.ExtendingAdd, F.ExtendingSub, F.ExtendingMul):
        return cls(w, a)
    if cls is F.SaturatingCast:
        return cls(U8, x16)
    if cls in (F.SaturatingNarrow, F.Abs):
        return cls(x16) if cls is F.Abs else cls(w)
    if cls in (F.MulShr, F.RoundingMulShr):
        return cls(x16, y16, h.const(I16, 12))
    if cls in (F.RoundingShl, F.RoundingShr, F.SaturatingShl,
               F.WideningShl, F.WideningShr):
        return cls(a, h.const(U8, 3))
    return cls(a, b)


ALL_OPS = list(F.FPIR_OPS.values())


@pytest.mark.parametrize("cls", ALL_OPS, ids=lambda c: c.name)
class TestExpansion:
    def test_every_op_has_a_definition(self, cls):
        node = _sample_node(cls)
        assert expand(node) is not None

    def test_expand_fully_reaches_core_ir(self, cls):
        node = _sample_node(cls)
        out = expand_fully(node)
        assert not any(isinstance(n, F.FPIRInstr) for n in out.walk())

    def test_expansion_preserves_type(self, cls):
        node = _sample_node(cls)
        assert expand_fully(node).type == node.type

    def test_expansion_preserves_meaning(self, cls):
        node = _sample_node(cls)
        env = {
            "a": [0, 1, 100, 255],
            "b": [255, 3, 200, 0],
            "x": [-32768, -1, 1000, 32767],
            "y": [32767, 7, -1000, -32768],
            "w": [0, 255, 4080, 65535],
        }
        env = {k: v for k, v in env.items()}
        assert evaluate(node, env, lanes=4) == evaluate(
            expand_fully(node), env, lanes=4
        )


class TestExpandBehaviour:
    def test_non_fpir_returns_none(self):
        assert expand(a + b) is None

    def test_one_step_may_keep_fpir(self):
        # saturating_add is defined via other FPIR ops (Table 1)
        step = expand(F.SaturatingAdd(a, b))
        assert any(isinstance(n, F.FPIRInstr) for n in step.walk())

    def test_expansion_is_idempotent_at_fixpoint(self):
        out = expand_fully(F.RoundingMulShr(
            h.var("x", I16), h.var("y", I16), h.const(I16, 15)
        ))
        assert expand_fully(out) == out


class TestSaturateBoundsClamp:
    def test_narrowing_unsigned(self):
        w = h.var("w", U16)
        out = saturate_bounds_clamp(w, U8)
        assert out == E.Min(w, h.const(U16, 255))

    def test_sign_change_needs_lower_clamp(self):
        x = h.var("x", I16)
        out = saturate_bounds_clamp(x, U16)
        assert out == E.Max(x, h.const(I16, 0))

    def test_widening_same_sign_is_noop(self):
        out = saturate_bounds_clamp(a, U16)
        assert out is a

    @pytest.mark.parametrize("src", ARITH_TYPES, ids=str)
    @pytest.mark.parametrize("dst", ARITH_TYPES, ids=str)
    def test_clamp_matches_saturate_everywhere(self, src, dst):
        x = h.var("x", src)
        clamped = saturate_bounds_clamp(x, dst)
        samples = [src.min_value, -1, 0, 1, src.max_value]
        samples = [v for v in samples if src.contains(v)]
        for v in samples:
            got = evaluate(clamped, {"x": [v]})[0]
            assert got == dst.saturate(v) if dst.contains(
                dst.saturate(v)
            ) else True
            # the clamped value must be representable in dst
            assert dst.contains(got)
