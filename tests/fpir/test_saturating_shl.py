"""§8.4: the saturating_shl extension, end to end.

"Extending FPIR is straightforward: a one-line definition of
saturating_shl is added, one line of code is added to the lifter ...
[mappings] to the ARM backend ... and one line ... for backends that do
not directly support them."  This test walks the same checklist.
"""

import pytest
from hypothesis import given, settings
import hypothesis.strategies as st

from repro import fpir as F
from repro.interp import evaluate_scalar
from repro.ir import builders as h
from repro.ir import expr as E
from repro.ir.types import I16, U8
from repro.lifting import lift
from repro.pipeline import pitchfork_compile
from repro.targets import ARM, HVX, X86


class TestDefinition:
    def test_semantics_at_saturation(self):
        node = F.SaturatingShl(h.var("x", I16), h.const(I16, 8))
        assert evaluate_scalar(node, {"x": 1000}) == 32767
        assert evaluate_scalar(node, {"x": -1000}) == -32768
        assert evaluate_scalar(node, {"x": 3}) == 768

    @settings(max_examples=60, deadline=None)
    @given(
        x=st.integers(min_value=-32768, max_value=32767),
        s=st.integers(min_value=0, max_value=16),
    )
    def test_matches_clamped_exact_shift(self, x, s):
        node = F.SaturatingShl(h.var("x", I16), h.const(I16, s))
        assert evaluate_scalar(node, {"x": x}) == I16.saturate(x << s)


class TestLifting:
    def test_lifter_recognizes_the_pattern(self):
        # saturating_cast<T>(widening_shl(x, y)) -> saturating_shl(x, y)
        x = h.var("x", U8)
        src = h.u8(h.minimum((h.u16(x) << 5), 255))
        out = lift(src)
        assert out == F.SaturatingShl(x, h.const(U8, 5))


class TestLowering:
    def test_arm_maps_to_uqshl(self):
        node = F.SaturatingShl(h.var("x", I16), h.const(I16, 3))
        prog = pitchfork_compile(node, ARM)
        assert prog.instructions == ["sqshl"]

    def test_hvx_maps_to_vasl_sat(self):
        node = F.SaturatingShl(h.var("x", I16), h.const(I16, 3))
        prog = pitchfork_compile(node, HVX)
        assert prog.instructions == ["vasl:sat"]

    def test_x86_emulates_via_expansion(self):
        # no native saturating shift: the definitional lowering applies
        node = F.SaturatingShl(h.var("x", I16), h.const(I16, 3))
        prog = pitchfork_compile(node, X86)
        assert len(prog.instructions) > 1

    @pytest.mark.parametrize("target", [ARM, HVX, X86], ids=lambda t: t.name)
    def test_all_targets_execute_exactly(self, target):
        node = F.SaturatingShl(h.var("x", I16), h.const(I16, 4))
        prog = pitchfork_compile(node, target)
        env = {"x": [-32768, -10, 0, 7, 2047, 2048, 32767]}
        expected = [I16.saturate(v << 4) for v in env["x"]]
        assert prog.run(env) == expected
