"""Table 1 semantics: direct evaluators must match the compositional
definitions, for every instruction, type, and sign combination.

This is the reproduction of the paper's rule-verification machinery applied
to FPIR itself: the expansion (Table 1 right-hand column) is the ground
truth and the fast direct evaluator is checked against it property-wise.
"""

import pytest
from hypothesis import given, settings
import hypothesis.strategies as st

from repro import fpir as F
from repro.fpir.semantics import expand_fully
from repro.ir import builders as h
from repro.ir.expr import Var
from repro.ir.types import (
    ARITH_TYPES,
    I8,
    I16,
    I32,
    U8,
    U16,
    U32,
    ScalarType,
)
from repro.interp import evaluate_scalar

WIDENABLE = [t for t in ARITH_TYPES if t.bits < 64]
NARROWABLE = [t for t in ARITH_TYPES if t.bits > 8]


def check_matches_expansion(node, env):
    """Direct evaluation == evaluation of the full Table 1 expansion."""
    direct = evaluate_scalar(node, env)
    expanded = evaluate_scalar(expand_fully(node), env)
    assert direct == expanded, (
        f"{node}: direct={direct} expansion={expanded} env={env}"
    )
    assert node.type.contains(direct)


def values_for(t: ScalarType):
    return st.integers(min_value=t.min_value, max_value=t.max_value)


# ----------------------------------------------------------------------
# Binary, same-type instructions
# ----------------------------------------------------------------------
SAME_TYPE_OPS = [
    F.WideningAdd,
    F.WideningSub,
    F.HalvingAdd,
    F.HalvingSub,
    F.RoundingHalvingAdd,
    F.SaturatingAdd,
    F.SaturatingSub,
    F.Absd,
]


@pytest.mark.parametrize("op", SAME_TYPE_OPS, ids=lambda c: c.name)
@pytest.mark.parametrize("t", WIDENABLE, ids=str)
@settings(max_examples=60, deadline=None)
@given(data=st.data())
def test_same_type_binary(op, t, data):
    x = data.draw(values_for(t), label="x")
    y = data.draw(values_for(t), label="y")
    node = op(Var(t, "x"), Var(t, "y"))
    check_matches_expansion(node, {"x": x, "y": y})


@pytest.mark.parametrize("ta", WIDENABLE, ids=str)
@settings(max_examples=40, deadline=None)
@given(data=st.data())
def test_widening_mul_mixed_signs(ta, data):
    tb = ta.with_signed(not ta.signed)
    x = data.draw(values_for(ta), label="x")
    y = data.draw(values_for(tb), label="y")
    node = F.WideningMul(Var(ta, "x"), Var(tb, "y"))
    check_matches_expansion(node, {"x": x, "y": y})


@pytest.mark.parametrize("t", WIDENABLE, ids=str)
@settings(max_examples=40, deadline=None)
@given(data=st.data())
def test_widening_shifts(t, data):
    x = data.draw(values_for(t), label="x")
    s = data.draw(st.integers(min_value=0, max_value=t.bits * 2), label="s")
    for op in (F.WideningShl, F.WideningShr):
        node = op(Var(t, "x"), h.const(t.with_signed(False), s))
        check_matches_expansion(node, {"x": x})


@pytest.mark.parametrize("t", NARROWABLE, ids=str)
@settings(max_examples=40, deadline=None)
@given(data=st.data())
def test_extending_ops(t, data):
    n = t.narrow()
    x = data.draw(values_for(t), label="x")
    y = data.draw(values_for(n), label="y")
    for op in (F.ExtendingAdd, F.ExtendingSub, F.ExtendingMul):
        node = op(Var(t, "x"), Var(n, "y"))
        check_matches_expansion(node, {"x": x, "y": y})


@pytest.mark.parametrize("t", ARITH_TYPES, ids=str)
@settings(max_examples=30, deadline=None)
@given(data=st.data())
def test_abs(t, data):
    x = data.draw(values_for(t), label="x")
    node = F.Abs(Var(t, "x"))
    check_matches_expansion(node, {"x": x})
    assert evaluate_scalar(node, {"x": x}) == abs(x)


@pytest.mark.parametrize("src", ARITH_TYPES, ids=str)
@pytest.mark.parametrize("dst", ARITH_TYPES, ids=str)
@settings(max_examples=25, deadline=None)
@given(data=st.data())
def test_saturating_cast_all_pairs(src, dst, data):
    x = data.draw(values_for(src), label="x")
    node = F.SaturatingCast(dst, Var(src, "x"))
    check_matches_expansion(node, {"x": x})
    assert evaluate_scalar(node, {"x": x}) == dst.saturate(x)


@pytest.mark.parametrize("t", NARROWABLE, ids=str)
@settings(max_examples=30, deadline=None)
@given(data=st.data())
def test_saturating_narrow(t, data):
    x = data.draw(values_for(t), label="x")
    node = F.SaturatingNarrow(Var(t, "x"))
    check_matches_expansion(node, {"x": x})
    assert evaluate_scalar(node, {"x": x}) == t.narrow().saturate(x)


@pytest.mark.parametrize("t", [U8, I8, U16, I16], ids=str)
@settings(max_examples=60, deadline=None)
@given(data=st.data())
def test_rounding_shifts(t, data):
    x = data.draw(values_for(t), label="x")
    ts = t.with_signed(True)
    s = data.draw(
        st.integers(min_value=-(t.bits - 1), max_value=t.bits - 1), label="s"
    )
    for op in (F.RoundingShl, F.RoundingShr):
        node = op(Var(t, "x"), h.const(ts, s))
        check_matches_expansion(node, {"x": x})


@pytest.mark.parametrize("t", [I16, I32, U16], ids=str)
@settings(max_examples=60, deadline=None)
@given(data=st.data())
def test_mul_shr_variants(t, data):
    x = data.draw(values_for(t), label="x")
    y = data.draw(values_for(t), label="y")
    s = data.draw(st.integers(min_value=0, max_value=t.bits), label="s")
    shift = h.const(t.with_signed(False), s)
    for op in (F.MulShr, F.RoundingMulShr):
        node = op(Var(t, "x"), Var(t, "y"), shift)
        check_matches_expansion(node, {"x": x, "y": y})


@pytest.mark.parametrize("t", [I8, I16, U16], ids=str)
@settings(max_examples=60, deadline=None)
@given(data=st.data())
def test_saturating_shl(t, data):
    x = data.draw(values_for(t), label="x")
    s = data.draw(st.integers(min_value=0, max_value=t.bits), label="s")
    node = F.SaturatingShl(Var(t, "x"), h.const(t.with_signed(False), s))
    check_matches_expansion(node, {"x": x})


# ----------------------------------------------------------------------
# Known-value spot checks (documented hardware behaviour)
# ----------------------------------------------------------------------
class TestKnownValues:
    def test_rounding_average_of_3_and_4_is_4(self):
        """§2.1: round-up averaging of 4 and 3 produces 4."""
        node = F.RoundingHalvingAdd(Var(U8, "x"), Var(U8, "y"))
        assert evaluate_scalar(node, {"x": 4, "y": 3}) == 4

    def test_halving_average_of_3_and_4_is_3(self):
        node = F.HalvingAdd(Var(U8, "x"), Var(U8, "y"))
        assert evaluate_scalar(node, {"x": 4, "y": 3}) == 3

    def test_halving_add_no_overflow_at_max(self):
        """§3.1.2: halving_add cannot overflow, so no saturating variant."""
        node = F.HalvingAdd(Var(U8, "x"), Var(U8, "y"))
        assert evaluate_scalar(node, {"x": 255, "y": 255}) == 255

    def test_uhsub_wrapping(self):
        """ARM UHSUB semantics: (0 - 255) >> 1 wraps to 128 in u8."""
        node = F.HalvingSub(Var(U8, "x"), Var(U8, "y"))
        assert evaluate_scalar(node, {"x": 0, "y": 255}) == 128

    def test_sqrdmulh_saturation(self):
        """rounding_mul_shr(i16 min, i16 min, 15) saturates to 32767."""
        node = F.RoundingMulShr(
            Var(I16, "x"), Var(I16, "y"), h.const(I16, 15)
        )
        assert evaluate_scalar(node, {"x": -32768, "y": -32768}) == 32767

    def test_vpmulhw_case(self):
        """mul_shr(x, y, 16) == high half of the 32-bit product."""
        node = F.MulShr(Var(I16, "x"), Var(I16, "y"), h.const(I16, 16))
        assert evaluate_scalar(node, {"x": 1000, "y": 1000}) == (
            1000 * 1000
        ) >> 16

    def test_abs_of_int_min_is_total(self):
        node = F.Abs(Var(I8, "x"))
        assert evaluate_scalar(node, {"x": -128}) == 128

    def test_absd_extremes(self):
        node = F.Absd(Var(I8, "x"), Var(I8, "y"))
        assert evaluate_scalar(node, {"x": -128, "y": 127}) == 255

    def test_saturating_add_unsigned(self):
        node = F.SaturatingAdd(Var(U8, "x"), Var(U8, "y"))
        assert evaluate_scalar(node, {"x": 200, "y": 100}) == 255

    def test_saturating_sub_unsigned_floors_at_zero(self):
        node = F.SaturatingSub(Var(U8, "x"), Var(U8, "y"))
        assert evaluate_scalar(node, {"x": 3, "y": 10}) == 0

    def test_widening_sub_of_unsigned_goes_negative(self):
        node = F.WideningSub(Var(U8, "x"), Var(U8, "y"))
        assert evaluate_scalar(node, {"x": 0, "y": 255}) == -255
        assert node.type == I16

    def test_rounding_shr_rounds_half_up(self):
        node = F.RoundingShr(Var(I16, "x"), h.const(I16, 1))
        assert evaluate_scalar(node, {"x": 5}) == 3
        assert evaluate_scalar(node, {"x": -5}) == -2
