"""Typing-rule tests for every FPIR instruction (paper Table 1)."""

import pytest

from repro import fpir as F
from repro.ir import builders as h
from repro.ir.expr import TypeError_
from repro.ir.types import I8, I16, I32, U8, U16, U32, U64, ScalarType


def v(t, name="x"):
    return h.var(name, t)


class TestWideningTypes:
    def test_widening_add_widens(self):
        assert F.WideningAdd(v(U8), v(U8, "y")).type == U16
        assert F.WideningAdd(v(I16), v(I16, "y")).type == I32

    def test_widening_add_requires_same_type(self):
        with pytest.raises(TypeError_):
            F.WideningAdd(v(U8), v(I8, "y"))

    def test_widening_sub_result_is_signed(self):
        assert F.WideningSub(v(U8), v(U8, "y")).type == I16
        assert F.WideningSub(v(I8), v(I8, "y")).type == I16

    def test_widening_mul_sign_mixing(self):
        assert F.WideningMul(v(U8), v(U8, "y")).type == U16
        assert F.WideningMul(v(U8), v(I8, "y")).type == I16
        assert F.WideningMul(v(I8), v(U8, "y")).type == I16
        assert F.WideningMul(v(I8), v(I8, "y")).type == I16

    def test_widening_mul_rejects_width_mismatch(self):
        with pytest.raises(TypeError_):
            F.WideningMul(v(U8), v(U16, "y"))

    def test_widening_shl_preserves_sign(self):
        assert F.WideningShl(v(U8), v(U8, "y")).type == U16
        assert F.WideningShl(v(U8), v(I8, "y")).type == U16

    def test_widening_64_gives_128(self):
        wide = F.WideningMul(v(U64), v(U64, "y"))
        assert wide.type == ScalarType(128, False)


class TestExtendingTypes:
    def test_extending_add(self):
        assert F.ExtendingAdd(v(U16), v(U8, "y")).type == U16

    def test_extending_requires_double_width(self):
        with pytest.raises(TypeError_):
            F.ExtendingAdd(v(U16), v(U16, "y"))
        with pytest.raises(TypeError_):
            F.ExtendingAdd(v(U32), v(U8, "y"))

    def test_extending_requires_same_sign(self):
        with pytest.raises(TypeError_):
            F.ExtendingAdd(v(U16), v(I8, "y"))


class TestAbsTypes:
    def test_abs_output_unsigned(self):
        assert F.Abs(v(I8)).type == U8
        assert F.Abs(v(U16)).type == U16

    def test_absd_output_unsigned(self):
        assert F.Absd(v(I16), v(I16, "y")).type == U16
        assert F.Absd(v(U8), v(U8, "y")).type == U8

    def test_absd_requires_same_type(self):
        with pytest.raises(TypeError_):
            F.Absd(v(U8), v(I8, "y"))


class TestSaturatingTypes:
    def test_saturating_cast(self):
        assert F.SaturatingCast(U8, v(U16)).type == U8
        assert F.SaturatingCast(I32, v(U8)).type == I32

    def test_saturating_narrow(self):
        assert F.SaturatingNarrow(v(U16)).type == U8
        assert F.SaturatingNarrow(v(I32)).type == I16

    def test_saturating_narrow_rejects_8bit(self):
        with pytest.raises(TypeError_):
            F.SaturatingNarrow(v(U8))

    def test_same_type_binaries(self):
        for cls in (
            F.SaturatingAdd,
            F.SaturatingSub,
            F.HalvingAdd,
            F.HalvingSub,
            F.RoundingHalvingAdd,
        ):
            assert cls(v(U8), v(U8, "y")).type == U8
            with pytest.raises(TypeError_):
                cls(v(U8), v(U16, "y"))


class TestShiftAndMulTypes:
    def test_rounding_shifts_allow_signed_amounts(self):
        assert F.RoundingShl(v(U16), v(I16, "s")).type == U16
        assert F.RoundingShr(v(I16), v(U16, "s")).type == I16

    def test_mul_shr_types(self):
        assert F.MulShr(v(I16), v(I16, "y"), v(I16, "z")).type == I16
        assert F.MulShr(v(U16), v(U16, "y"), v(U16, "z")).type == U16
        assert F.MulShr(v(U16), v(I16, "y"), v(U16, "z")).type == I16

    def test_rounding_mul_shr_types(self):
        assert (
            F.RoundingMulShr(v(I32), v(I32, "y"), v(I32, "z")).type == I32
        )

    def test_mul_shr_rejects_width_mismatch(self):
        with pytest.raises(TypeError_):
            F.MulShr(v(I16), v(I16, "y"), v(I8, "z"))

    def test_saturating_shl(self):
        assert F.SaturatingShl(v(I16), v(I16, "s")).type == I16


class TestCuration:
    """§3.1.2: deliberately-excluded instructions must stay excluded."""

    def test_no_rounding_halving_sub(self):
        assert "rounding_halving_sub" not in F.FPIR_OPS
        assert not hasattr(F, "RoundingHalvingSub")

    def test_no_saturating_halving_add(self):
        assert "saturating_halving_add" not in F.FPIR_OPS

    def test_registry_complete(self):
        # Table 1 has 21 instructions; §8.4 adds saturating_shl.
        assert len(F.FPIR_OPS) == 22
        expected = {
            "extending_add",
            "extending_sub",
            "extending_mul",
            "widening_add",
            "widening_sub",
            "widening_mul",
            "widening_shl",
            "widening_shr",
            "abs",
            "absd",
            "saturating_cast",
            "saturating_narrow",
            "saturating_add",
            "saturating_sub",
            "halving_add",
            "halving_sub",
            "rounding_halving_add",
            "rounding_shl",
            "rounding_shr",
            "mul_shr",
            "rounding_mul_shr",
            "saturating_shl",
        }
        assert set(F.FPIR_OPS) == expected
