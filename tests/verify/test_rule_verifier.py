"""The verifier must catch exactly the §2.4 bug classes: wrong semantics,
missing constant-range predicates, sign confusions."""

import pytest

from repro import fpir as F
from repro.ir import builders as h
from repro.ir import expr as E
from repro.ir.types import U8, U16
from repro.trs.pattern import ConstWild, PConst, TVar, TWiden, Wild
from repro.trs.rule import Rule
from repro.verify import verify_equivalence, verify_rule

a = h.var("a", U8)
b = h.var("b", U8)


class TestEquivalence:
    def test_equal_expressions_pass(self):
        lhs = E.Add(h.u16(a), h.u16(b))
        rhs = F.WideningAdd(a, b)
        assert verify_equivalence(lhs, rhs) is None

    def test_counterexample_found(self):
        lhs = E.Add(a, b)  # wrapping
        rhs = F.SaturatingAdd(a, b)  # saturating
        cex = verify_equivalence(lhs, rhs)
        assert cex is not None
        x, y = cex["env"]["a"], cex["env"]["b"]
        assert x + y > 255  # the wrap/saturate divergence point

    def test_type_mismatch_reported(self):
        cex = verify_equivalence(h.u16(a), h.i16(a))
        assert cex is not None and "type mismatch" in cex["reason"]

    def test_boundary_bias_finds_edge_bugs(self):
        # wrong only at the signed minimum: abs vs identity-on-negatives
        x = h.var("x", h.I8)
        lhs = F.Abs(x)
        rhs = E.Reinterpret(
            U8, h.select(E.GE(x, 0), x, E.Sub(h.const(h.I8, 0), x))
        )
        # these ARE equal (wrapping negate); sanity check the harness
        assert verify_equivalence(lhs, rhs) is None

    def test_respects_var_bounds(self):
        from repro.analysis import Interval

        # equal only when a <= 100
        lhs = E.Add(a, h.const(U8, 100))
        rhs = F.SaturatingAdd(a, h.const(U8, 100))
        assert verify_equivalence(lhs, rhs) is not None
        assert (
            verify_equivalence(
                lhs, rhs, var_bounds={"a": Interval(0, 100)}
            )
            is None
        )


class TestRuleVerification:
    def test_sound_rule_passes(self):
        T = TVar("T", max_bits=32)
        rule = Rule(
            "ok",
            E.Add(
                E.Cast(TWiden(T), Wild("x", T)),
                E.Cast(TWiden(T), Wild("y", T)),
            ),
            F.WideningAdd(Wild("x", T), Wild("y", T)),
        )
        assert verify_rule(rule).ok

    def test_unsound_rule_caught(self):
        # claims plain add == saturating add
        T = TVar("T", max_bits=32)
        rule = Rule(
            "bad",
            E.Add(Wild("x", T), Wild("y", T)),
            F.SaturatingAdd(Wild("x", T), Wild("y", T)),
        )
        report = verify_rule(rule)
        assert not report.ok
        assert report.counterexample is not None

    def test_missing_range_predicate_caught(self):
        # §2.4's bug class: "missing predicates over the range of
        # constant values for which a rule is valid".  widen(x) << c ->
        # widening_shl(x, c) is wrong when c doesn't fit the narrow type.
        T = TVar("T", max_bits=32)
        rule = Rule(
            "no-range-check",
            E.Shl(
                E.Cast(TWiden(T), Wild("x", T)),
                ConstWild("c0", TWiden(T)),
            ),
            F.WideningShl(
                Wild("x", T), PConst(TVar("T"), lambda c: c["c0"])
            ),
        )
        report = verify_rule(rule)
        assert not report.ok

    def test_same_rule_with_predicate_passes(self):
        T = TVar("T", max_bits=32)
        rule = Rule(
            "with-range-check",
            E.Shl(
                E.Cast(TWiden(T), Wild("x", T)),
                ConstWild("c0", TWiden(T)),
            ),
            F.WideningShl(
                Wild("x", T), PConst(TVar("T"), lambda c: c["c0"])
            ),
            predicate=lambda m, ctx: 0
            <= m.consts["c0"]
            <= m.tenv["T"].max_value,
        )
        assert verify_rule(rule).ok

    def test_forced_consts(self):
        T = TVar("T", max_bits=32)
        rule = Rule(
            "shift-by-specific",
            E.Shl(
                E.Cast(TWiden(T), Wild("x", T)),
                ConstWild("c0", TWiden(T)),
            ),
            F.WideningShl(
                Wild("x", T), PConst(TVar("T"), lambda c: c["c0"])
            ),
        )
        assert verify_rule(rule, forced_consts={"c0": 3}).ok
        # 257 wraps to a shift of 1 in the narrow type, while the wide
        # shift by 257 gives 0: wrong for the u8 combo
        assert not verify_rule(rule, forced_consts={"c0": 257}).ok

    def test_never_satisfiable_predicate_reported(self):
        T = TVar("T", max_bits=32)
        rule = Rule(
            "dead",
            E.Add(Wild("x", T), ConstWild("c0", T)),
            E.Add(Wild("x", T), ConstWild("c0", T)),
            predicate=lambda m, ctx: False,
        )
        report = verify_rule(rule)
        assert not report.ok
        assert "predicate never satisfied" in report.counterexample["reason"]

    def test_report_counts(self):
        T = TVar("T", max_bits=32)
        rule = Rule(
            "ok2",
            F.WideningAdd(Wild("x", T), Wild("y", T)),
            F.WideningAdd(Wild("y", T), Wild("x", T)),
        )
        report = verify_rule(rule)
        assert report.ok and report.checked_combos >= 4
