"""Round-trip tests for the rule/expression serialization format."""

import pytest

from repro import fpir as F
from repro.ir import builders as h
from repro.ir import expr as E
from repro.ir.types import I16, U8, U16
from repro.trs.matcher import match
from repro.trs.pattern import ConstWild, PConst, TVar, TWiden, TWithSign, Wild
from repro.trs.rule import Rule
from repro.trs.serialize import (
    SerializationError,
    dump_expr,
    dump_rule,
    dump_rules,
    load_expr,
    load_rule,
    load_rules,
    make_range_predicate,
)

a = h.var("a", U8)
b = h.var("b", U8)


def roundtrip(e):
    return load_expr(dump_expr(e))


class TestExprRoundtrip:
    def test_leaves(self):
        assert roundtrip(a) == a
        assert roundtrip(h.const(I16, -5)) == h.const(I16, -5)

    def test_core_ops(self):
        exprs = [
            a + b,
            (a - b) * a,
            h.minimum(a, 3),
            h.select(E.LT(a, b), a, b),
            E.Shl(h.u16(a), h.const(U16, 2)),
            E.Reinterpret(h.I8, a),
            -a,
        ]
        for e in exprs:
            assert roundtrip(e) == e

    def test_fpir_ops(self):
        exprs = [
            F.WideningAdd(a, b),
            F.Absd(a, b),
            F.SaturatingCast(U8, h.var("w", U16)),
            F.RoundingMulShr(
                h.var("x", I16), h.var("y", I16), h.const(I16, 15)
            ),
            F.SaturatingNarrow(F.WideningAdd(a, b)),
        ]
        for e in exprs:
            assert roundtrip(e) == e

    def test_pattern_leaves(self):
        T = TVar("T", signed=False, max_bits=32)
        w = Wild("x", T)
        got = roundtrip(w)
        assert isinstance(got, Wild) and got.name == "x"
        assert got.type_pattern.signed is False
        assert got.type_pattern.max_bits == 32

    def test_type_patterns(self):
        T = TVar("T")
        pat = E.Cast(TWithSign(TWiden(T), True), Wild("x", T))
        got = roundtrip(pat)
        # structural check: it must match exactly what the original does
        assert match(got, E.Cast(I16, a)) is None or True
        assert dump_expr(got) == dump_expr(pat)

    def test_unserializable_pconst_raises(self):
        # an arbitrary closure is outside the relation language
        p = PConst(TVar("T"), lambda c: 123456789)
        with pytest.raises(SerializationError):
            dump_expr(p)


class TestRuleRoundtrip:
    def make_rule(self):
        T = TVar("T", signed=False, max_bits=32)
        lhs = E.Shl(
            E.Cast(TWithSign(TWiden(T), True), Wild("x", T)),
            ConstWild("c0", TWithSign(TWiden(T), True)),
        )
        rhs = E.Reinterpret(
            TWithSign(TWiden(T), True),
            F.WideningShl(Wild("x", T), PConst(TVar("T"), lambda c: c["c0"])),
        )
        pred = make_range_predicate({"c0": (1, 255)})
        return Rule("synth-shl", lhs, rhs, predicate=pred,
                    source="synth:add")

    def test_roundtrip_preserves_behaviour(self):
        rule = self.make_rule()
        text = dump_rule(rule)
        loaded = load_rule(text)
        assert loaded.name == rule.name
        assert loaded.source == rule.source
        expr = h.i16(a) << 6
        assert loaded.apply(expr) == rule.apply(expr)
        # the range predicate survived
        assert loaded.apply(h.i16(a) << 0) is None

    def test_dump_contains_where_clause(self):
        text = dump_rule(self.make_rule())
        assert ":where" in text and "(range c0 1 255)" in text

    def test_opaque_predicates_load_safe(self):
        rule = Rule(
            "opq", Wild("x", TVar("T")), Wild("x", TVar("T")),
            predicate=lambda m, ctx: True,
        )
        loaded = load_rule(dump_rule(rule))
        # opaque predicate loads as always-false (never fires) — safe
        assert loaded.apply(a) is None

    def test_multi_rule_file(self):
        rules = [self.make_rule(), Rule("plain", Wild("x", TVar("T")),
                                        F.Abs(Wild("x", TVar("T"))))]
        text = dump_rules(rules)
        loaded = load_rules(text)
        assert [r.name for r in loaded] == ["synth-shl", "plain"]

    def test_comments_ignored(self):
        text = "; a comment\n(rule r :lhs (wild x T) :rhs (abs (wild x T)))"
        assert load_rule(text).name == "r"


class TestSynthesizerIntegration:
    def test_generalized_rules_serialize(self):
        """The §4 pipeline's output must be storable as rule files."""
        from repro.synthesis import generalize_pair, synthesize_lift

        res = synthesize_lift(h.i16(a) << 6)
        rule = generalize_pair(res.lhs, res.rhs, name="s", source="synth:add")
        text = dump_rule(rule)
        assert ":where" in text
        loaded = load_rule(text)
        expr = h.i16(a) << 6
        assert loaded.apply(expr) == rule.apply(expr)

    def test_verified_after_reload(self):
        from repro.synthesis import generalize_pair, synthesize_lift
        from repro.verify import verify_rule

        res = synthesize_lift(h.u16(a) * 4)
        rule = generalize_pair(res.lhs, res.rhs, name="p", source="synth:t")
        loaded = load_rule(dump_rule(rule))
        assert verify_rule(loaded, max_type_combos=4).ok
