"""Serialization round-trips over the whole benchmark suite: every
workload expression, and its lifted FPIR form, survive dump/load
exactly."""

import pytest

from repro.analysis import BoundsAnalyzer
from repro.lifting import Lifter
from repro.trs.serialize import dump_expr, load_expr
from repro.workloads import WORKLOADS, by_name


@pytest.mark.parametrize("name", WORKLOADS)
def test_workload_expression_roundtrip(name):
    wl = by_name(name)
    assert load_expr(dump_expr(wl.expr)) == wl.expr


@pytest.mark.parametrize("name", WORKLOADS)
def test_lifted_form_roundtrip(name):
    wl = by_name(name)
    lifted = Lifter().lift(wl.expr, BoundsAnalyzer(wl.var_bounds)).expr
    assert load_expr(dump_expr(lifted)) == lifted


@pytest.mark.parametrize("name", ["sobel3x3", "mul", "softmax"])
def test_roundtripped_expression_still_compiles(name):
    from repro.interp import evaluate
    from repro.pipeline import pitchfork_compile
    from repro.targets import ARM

    wl = by_name(name)
    reloaded = load_expr(dump_expr(wl.expr))
    prog = pitchfork_compile(reloaded, ARM, var_bounds=wl.var_bounds)
    env = wl.random_env(lanes=8, seed=9)
    assert prog.run(env) == evaluate(wl.expr, env)
