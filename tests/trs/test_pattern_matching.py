"""Unit tests for the pattern matcher and type unification."""

import pytest

from repro import fpir as F
from repro.ir import builders as h
from repro.ir import expr as E
from repro.ir.types import I8, I16, U8, U16, U32
from repro.trs.matcher import Match, instantiate, match
from repro.trs.pattern import (
    ConstWild,
    PConst,
    TNarrow,
    TVar,
    TWiden,
    TWithSign,
    Wild,
    resolve_type,
)

a = h.var("a", U8)
b = h.var("b", U8)
w = h.var("w", U16)


class TestWildcards:
    def test_wild_matches_any_expr(self):
        pat = Wild("x", TVar("T"))
        m = match(pat, E.Add(a, b))
        assert m is not None
        assert m.env["x"] == E.Add(a, b)
        assert m.tenv["T"] == U8

    def test_wild_type_constraint(self):
        pat = Wild("x", TVar("T", signed=True))
        assert match(pat, a) is None  # a is unsigned
        assert match(pat, h.var("s", I8)) is not None

    def test_repeated_wild_requires_equality(self):
        T = TVar("T")
        pat = E.Add(Wild("x", T), Wild("x", T))
        assert match(pat, E.Add(a, a)) is not None
        assert match(pat, E.Add(a, b)) is None

    def test_const_wild_matches_only_constants(self):
        pat = ConstWild("c", TVar("T"))
        m = match(pat, h.const(U8, 7))
        assert m is not None and m.consts["c"] == 7
        assert match(pat, a) is None

    def test_pconst_literal_in_lhs(self):
        pat = E.Mul(Wild("x", TVar("T")), PConst(TVar("T"), 2))
        assert match(pat, a * 2) is not None
        assert match(pat, a * 3) is None


class TestTypeUnification:
    def test_widen_inverts(self):
        pat = E.Cast(TWiden(TVar("T")), Wild("x", TVar("T")))
        m = match(pat, h.u16(a))
        assert m is not None and m.tenv["T"] == U8

    def test_widen_sign_consistent(self):
        # i16 is not the same-sign widening of u8
        pat = E.Cast(TWiden(TVar("T")), Wild("x", TVar("T")))
        assert match(pat, E.Cast(I16, a)) is None

    def test_with_sign(self):
        # TWithSign needs a sign-constrained inner pattern to be
        # unambiguous (i16 could come from widening u8 or i8).
        Tu = TVar("T", signed=False)
        pat = E.Cast(TWithSign(TWiden(Tu), True), Wild("x", Tu))
        m = match(pat, E.Cast(I16, a))
        assert m is not None and m.tenv["T"] == U8

    def test_with_sign_rejects_wrong_inner_sign(self):
        Ts = TVar("T", signed=True)
        pat = E.Cast(TWithSign(TWiden(Ts), True), Wild("x", Ts))
        assert match(pat, E.Cast(I16, a)) is None  # a is u8, inner wants i8

    def test_conflicting_bindings_fail(self):
        T = TVar("T")
        pat = E.Add(Wild("x", T), Wild("y", T))
        # Add requires equal types anyway; use Shl's sign mismatch:
        pat2 = E.Shl(Wild("x", TVar("T")), Wild("y", TVar("T")))
        s = h.var("s", I8)
        assert match(pat2, E.Shl(a, s)) is None  # u8 vs i8 for same T

    def test_resolve_type(self):
        tenv = {"T": U8}
        assert resolve_type(TWiden(TVar("T")), tenv) == U16
        assert resolve_type(TWithSign(TVar("T"), True), tenv) == I8
        assert resolve_type(TNarrow(TWiden(TVar("T"))), tenv) == U8
        with pytest.raises(KeyError):
            resolve_type(TVar("U"), tenv)


class TestInstantiation:
    def test_basic_substitution(self):
        T = TVar("T")
        lhs = E.Add(Wild("x", T), Wild("y", T))
        rhs = F.WideningAdd(Wild("x", T), Wild("y", T))
        m = match(lhs, E.Add(a, b))
        out = instantiate(rhs, m)
        assert out == F.WideningAdd(a, b)
        assert out.type == U16

    def test_computed_constants(self):
        lhs = E.Mul(Wild("x", TVar("T")), ConstWild("c", TVar("T")))
        rhs = E.Shl(
            Wild("x", TVar("T")),
            PConst(TVar("T"), lambda c: c["c"].bit_length() - 1),
        )
        m = match(lhs, a * 8)
        assert instantiate(rhs, m) == E.Shl(a, h.const(U8, 3))

    def test_type_dependent_constant(self):
        lhs = Wild("x", TVar("T"))
        rhs = E.BitXor(
            Wild("x", TVar("T")),
            PConst(TVar("T"), lambda c, tenv: 1 << (tenv["T"].bits - 1)),
        )
        m = match(lhs, a)
        out = instantiate(rhs, m)
        assert out.b == h.const(U8, 128)

    def test_unbound_wildcard_raises(self):
        m = Match(env={}, tenv={"T": U8})
        with pytest.raises(KeyError):
            instantiate(Wild("nope", TVar("T")), m)

    def test_resolved_cast_target(self):
        lhs = Wild("x", TVar("T", min_bits=16))
        rhs = E.Cast(TNarrow(TVar("T")), Wild("x", TVar("T")))
        m = match(lhs, w)
        assert instantiate(rhs, m) == E.Cast(U8, w)


class TestStructuralMatching:
    def test_nested_fpir_pattern(self):
        T = TVar("T")
        pat = F.SaturatingNarrow(F.WideningAdd(Wild("x", T), Wild("y", T)))
        expr = F.SaturatingNarrow(F.WideningAdd(a, b))
        assert match(pat, expr) is not None

    def test_class_mismatch(self):
        T = TVar("T")
        pat = E.Add(Wild("x", T), Wild("y", T))
        assert match(pat, E.Sub(a, b)) is None

    def test_non_expr_field_mismatch(self):
        pat = E.Cast(U16, Wild("x", TVar("T")))
        assert match(pat, E.Cast(U32, E.Cast(U16, a))) is None
        assert match(pat, h.u16(a)) is not None
