"""E-graph invariants: union-find, congruence closure, extraction.

The e-graph must be *sound* (extraction only returns terms provably equal
to the root) and *deterministic* (same inputs, same ids, same extracted
term — no hash-order or object-identity dependence); saturation must
respect its budgets.  The lifter contract on top: with no scorer, the
e-graph strategy is anchored to greedy and never returns an agnostically
costlier term.
"""

import pytest

from repro.ir import builders as h
from repro.ir import expr as E
from repro.ir.types import U8, U16
from repro.lifting import Lifter
from repro.lifting.canonicalize import canonicalize
from repro.trs.costs import cost
from repro.trs.egraph import EGraph, EGraphLifter
from repro.workloads import WORKLOADS, by_name


def _ab(t=U16):
    return h.var("a", t), h.var("b", t)


class TestUnionFind:
    def test_add_is_hash_consed(self):
        g = EGraph()
        a, b = _ab()
        assert g.add(E.Add(a, b)) == g.add(E.Add(a, b))
        assert g.add(a) != g.add(b)

    def test_union_merges_and_keeps_min_root(self):
        g = EGraph()
        a, b = _ab()
        ca, cb = g.add(a), g.add(b)
        root = g.union(ca, cb)
        assert root == min(ca, cb)
        assert g.find(ca) == g.find(cb) == root

    def test_congruence_closure_after_rebuild(self):
        # union(a, b) must make Add(a, x) and Add(b, x) congruent.
        g = EGraph()
        a, b = _ab()
        x = h.var("x", U16)
        fa = g.add(E.Add(a, x))
        fb = g.add(E.Add(b, x))
        assert g.find(fa) != g.find(fb)
        g.union(g.add(a), g.add(b))
        g.rebuild()
        assert g.find(fa) == g.find(fb)

    def test_rebuild_cascades(self):
        # Congruence at one level must propagate to parents.
        g = EGraph()
        a, b = _ab()
        x = h.var("x", U16)
        gfa = g.add(E.Mul(E.Add(a, x), x))
        gfb = g.add(E.Mul(E.Add(b, x), x))
        g.union(g.add(a), g.add(b))
        g.rebuild()
        assert g.find(gfa) == g.find(gfb)


class TestExtraction:
    def test_best_terms_picks_cheaper_member(self):
        g = EGraph()
        a, b = _ab()
        big = E.Add(E.Mul(a, h.const(U16, 1)), b)
        small = E.Add(a, b)
        root = g.add(big)
        g.union(root, g.add(small))
        g.rebuild()
        best = g.best_terms(cost)
        got_cost, got_term, _nid = best[g.find(root)]
        assert got_term == small
        assert got_cost == cost(small) < cost(big)

    def test_top_terms_ascending_and_bounded(self):
        g = EGraph()
        a, b = _ab()
        root = g.add(E.Add(E.Mul(a, h.const(U16, 1)), b))
        g.union(root, g.add(E.Add(a, b)))
        g.union(root, g.add(E.Add(b, a)))
        g.rebuild()
        tops, builder = g.top_terms(2, cost)
        lst = tops[g.find(root)]
        assert len(lst) <= 2
        costs = [c for c, _ in lst]
        assert costs == sorted(costs)
        # K-best must include the single best.
        assert lst[0][1] == g.best_terms(cost)[g.find(root)][1]
        # Every returned term has a builder e-node for provenance.
        assert all(t in builder for _, t in lst)

    def test_determinism(self):
        def build():
            g = EGraph()
            expr = canonicalize(by_name("sobel3x3").expr)
            root = g.add(expr)
            g.saturate(Lifter().engine.index, max_iters=2)
            best = g.best_terms(cost)
            return root, best[g.find(root)][1]

        (r1, t1), (r2, t2) = build(), build()
        assert r1 == r2
        assert t1 == t2


class TestSaturation:
    def test_budgets_are_respected(self):
        g = EGraph()
        g.add(canonicalize(by_name("gaussian3x3").expr))
        stats = g.saturate(
            Lifter().engine.index, max_iters=1, max_apps=5, max_enodes=50
        )
        assert stats.iterations == 1
        assert stats.applications <= 5
        assert not stats.saturated

    @pytest.mark.parametrize("name", ["add", "mul", "sobel3x3", "matmul"])
    def test_suite_cells_saturate_within_default_budgets(self, name):
        g = EGraph()
        g.add(canonicalize(by_name(name).expr))
        stats = g.saturate(Lifter().engine.index)
        assert stats.saturated
        assert stats.enodes < 3000 and stats.applications < 12000


class TestEGraphLifter:
    @pytest.mark.parametrize("name", WORKLOADS)
    def test_never_agnostically_worse_than_greedy(self, name):
        lifter = Lifter()
        expr = canonicalize(by_name(name).expr)
        greedy = lifter.engine.rewrite(expr).expr
        eg = EGraphLifter(lifter.engine).rewrite(expr).expr
        assert cost(eg) <= cost(greedy)

    def test_scorer_anchor_never_loses(self):
        # A scorer that hates everything must leave greedy untouched.
        lifter = Lifter()
        expr = canonicalize(by_name("softmax").expr)
        greedy = lifter.engine.rewrite(expr).expr
        eg = EGraphLifter(lifter.engine).rewrite(
            expr, scorer=lambda term: 0 if term is greedy else 10**9
        )
        assert eg.expr is greedy

    def test_unscorable_candidates_are_skipped(self):
        lifter = Lifter()
        expr = canonicalize(by_name("l2norm").expr)
        greedy = lifter.engine.rewrite(expr).expr
        eg = EGraphLifter(lifter.engine).rewrite(
            expr, scorer=lambda term: 1 if term is greedy else None
        )
        assert eg.expr is greedy

    def test_result_carries_saturation_stats(self):
        lifter = Lifter()
        expr = canonicalize(by_name("add").expr)
        res = EGraphLifter(lifter.engine).rewrite(expr)
        assert res.egraph.iterations >= 1
        assert res.egraph.enodes >= 1

    def test_strategy_validation(self):
        with pytest.raises(ValueError):
            Lifter(strategy="quantum")
