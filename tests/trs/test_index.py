"""Rule-index contract: the discrimination tree is a drop-in for the
linear scan + per-rule precheck it replaced.

The load-bearing property is *differential*: for any interned node, the
trie's candidate list equals the reference linear scan's — same rules, in
the same (priority) order — over every rulebase the pipeline actually
uses.  Everything else (wildcard bucketing, memoization, byte-identical
engine output) follows from that, but is pinned separately so a failure
names the broken layer.
"""

import random

import pytest
from hypothesis import given, settings
import hypothesis.strategies as st

from repro import fpir as F
from repro.ir import builders as h
from repro.ir import expr as E
from repro.ir.types import I16, U8, U16
from repro.lifting import Lifter
from repro.lifting.canonicalize import canonicalize
from repro.machine.lowerer import Lowerer
from repro.targets import ARM, HVX, X86
from repro.trs.index import ANY, RuleIndex
from repro.trs.pattern import ConstWild, Wild
from repro.trs.rule import Rule
from repro.workloads import WORKLOADS, by_name


def _gen_u8(rng, depth):
    """Random u8-typed expression (the robustness-fuzz shape family)."""
    if depth == 0:
        choice = rng.randrange(3)
        if choice < 2:
            return h.var(rng.choice("abcd"), U8)
        return h.const(U8, rng.randrange(256))
    op = rng.randrange(10)
    x, y = _gen_u8(rng, depth - 1), _gen_u8(rng, depth - 1)
    if op == 0:
        return h.u8((h.u16(x) + h.u16(y)) >> 1)
    if op == 1:
        return h.u8((h.u16(x) + h.u16(y) + 1) >> 1)
    if op == 2:
        return h.u8(h.minimum(h.u16(x) + h.u16(y), 255))
    if op == 3:
        return h.u8(h.minimum(h.u16(x) * rng.choice([2, 3, 4, 8]), 255))
    if op == 4:
        return h.maximum(x, y)
    if op == 5:
        return h.minimum(x, y)
    if op == 6:
        return h.select(E.GT(x, y), x - y, y - x)
    if op == 7:
        return x ^ y
    if op == 8:
        return h.u8((h.u16(x) + h.u16(y) + 2) >> 2)
    return F.SaturatingSub(x, y)


LIFT_INDEX = Lifter().engine.index
LOWER_INDEXES = [Lowerer(t).engine.index for t in (X86, ARM, HVX)]


def _assert_differential(index: RuleIndex, expr):
    for node in expr.walk():
        assert index.candidates(node) == index.candidates_linear(node)


@settings(max_examples=60, deadline=None)
@given(seed=st.integers(0, 2**20))
def test_trie_matches_linear_scan_on_random_exprs(seed):
    rng = random.Random(seed)
    expr = canonicalize(_gen_u8(rng, rng.randint(1, 3)))
    _assert_differential(LIFT_INDEX, expr)
    # Lift to FPIR so the lowering indexes see realistic shapes too.
    lifted = Lifter().rewrite(expr).expr
    for index in LOWER_INDEXES:
        _assert_differential(index, lifted)


@pytest.mark.parametrize("name", WORKLOADS)
def test_trie_matches_linear_scan_on_the_suite(name):
    wl = by_name(name)
    expr = canonicalize(wl.expr)
    _assert_differential(LIFT_INDEX, expr)
    lifted = Lifter().rewrite(expr).expr
    for index in LOWER_INDEXES:
        _assert_differential(index, lifted)


class TestWildcardBuckets:
    """Wildcard-rooted rules fold into every applicable query result."""

    def _rules(self):
        x, y = Wild("x", I16), Wild("y", I16)
        return [
            Rule("add-wild", E.Add(x, y), E.Add(y, x)),
            Rule("any-root", Wild("z", I16), Wild("z", I16)),
            Rule(
                "const-root", ConstWild("c", I16), ConstWild("c", I16)
            ),
            Rule(
                "add-const",
                E.Add(Wild("a", I16), ConstWild("k", I16)),
                Wild("a", I16),
            ),
        ]

    def test_wild_bucket_reaches_every_node(self):
        idx = RuleIndex(self._rules())
        names = [r.name for r in idx.candidates(h.var("v", I16))]
        assert names == ["any-root"]

    def test_const_bucket_reaches_only_const_nodes(self):
        idx = RuleIndex(self._rules())
        names = [r.name for r in idx.candidates(h.const(I16, 7))]
        assert names == ["any-root", "const-root"]

    def test_child_symbols_discriminate(self):
        idx = RuleIndex(self._rules())
        v = h.var("v", I16)
        var_add = [r.name for r in idx.candidates(E.Add(v, v))]
        # add-const requires a Const second child; the trie prunes it.
        assert var_add == ["add-wild", "any-root"]
        const_add = [
            r.name for r in idx.candidates(E.Add(v, h.const(I16, 3)))
        ]
        assert const_add == ["add-wild", "any-root", "add-const"]

    def test_priority_order_is_rulebase_order(self):
        # Candidates from the trie leaves and both buckets interleave by
        # original position, not by bucket.
        x = Wild("x", I16)
        rules = [
            Rule("first", E.Add(x, Wild("y", I16)), x),
            Rule("second", Wild("z", I16), Wild("z", I16)),
            Rule(
                "third",
                E.Add(Wild("a", I16), Wild("b", I16)),
                Wild("a", I16),
            ),
        ]
        idx = RuleIndex(rules)
        v = h.var("v", I16)
        names = [r.name for r in idx.candidates(E.Add(v, v))]
        assert names == ["first", "second", "third"]


class TestMemoization:
    def test_same_shape_returns_identical_tuple(self):
        idx = RuleIndex(Lifter().engine.rules)
        a = E.Add(h.var("a", U16), h.var("b", U16))
        b = E.Add(h.var("c", U16), h.var("d", U16))
        assert idx.shape_of(a) == idx.shape_of(b)
        assert idx.candidates(a) is idx.candidates(b)

    def test_engine_reference_path_selectable(self):
        from repro.trs.rewriter import RewriteEngine

        rules = Lifter().engine.rules
        indexed = RewriteEngine(rules, require_cost_decrease=True)
        linear = RewriteEngine(
            rules, require_cost_decrease=True, use_index=False
        )
        expr = canonicalize(by_name("sobel3x3").expr)
        assert (
            indexed.rewrite(expr).expr == linear.rewrite(expr).expr
        )
