"""Unit tests for the rewrite engine and the §3.2 cost model."""

import pytest

from repro import fpir as F
from repro.ir import builders as h
from repro.ir import expr as E
from repro.ir.types import U8, U16
from repro.trs.costs import cost
from repro.trs.pattern import TVar, TWiden, Wild
from repro.trs.rewriter import RewriteEngine, RewriteError
from repro.trs.rule import Rule

a = h.var("a", U8)
b = h.var("b", U8)


def widening_add_rule():
    T = TVar("T", max_bits=32)
    return Rule(
        "wadd",
        E.Add(
            E.Cast(TWiden(T), Wild("x", T)),
            E.Cast(TWiden(T), Wild("y", T)),
        ),
        F.WideningAdd(Wild("x", T), Wild("y", T)),
    )


class TestCostModel:
    def test_lexicographic_components(self):
        c = cost(E.Add(h.u16(a), h.u16(b)))
        width_sum, rank_sum, nodes = c
        # casts take 8-bit inputs; the add takes two 16-bit inputs
        assert width_sum == 8 + 8 + 32
        assert nodes == 5

    def test_fpir_cheaper_than_widened_form(self):
        widened = E.Add(h.u16(a), h.u16(b))
        lifted = F.WideningAdd(a, b)
        assert cost(lifted) < cost(widened)

    def test_rounding_halving_ranks_below_halving(self):
        # §3.2's explicit example
        rha = F.RoundingHalvingAdd(a, b)
        ha = F.HalvingAdd(a, b)
        assert cost(rha) < cost(ha)

    def test_leaves_are_free(self):
        assert cost(a) == (0, 0, 1)

    def test_mul_ranks_above_add(self):
        assert cost(a * b) > cost(a + b)


class TestRewriteEngine:
    def test_fixpoint_single_rule(self):
        eng = RewriteEngine([widening_add_rule()])
        out = eng.rewrite_expr(E.Add(h.u16(a), h.u16(b)))
        assert out == F.WideningAdd(a, b)

    def test_rewrites_nested_occurrences(self):
        eng = RewriteEngine([widening_add_rule()])
        inner = E.Add(h.u16(a), h.u16(b))
        expr = E.Min(inner, inner)
        out = eng.rewrite_expr(expr)
        assert out == E.Min(F.WideningAdd(a, b), F.WideningAdd(a, b))

    def test_trace_records_applications(self):
        eng = RewriteEngine([widening_add_rule()])
        res = eng.rewrite(E.Add(h.u16(a), h.u16(b)))
        assert res.rules_used == ["wadd"]

    def test_cost_decrease_gate_rejects_neutral_rules(self):
        T = TVar("T")
        commute = Rule(
            "commute", E.Add(Wild("x", T), Wild("y", T)),
            E.Add(Wild("y", T), Wild("x", T)),
        )
        eng = RewriteEngine([commute], require_cost_decrease=True)
        expr = E.Add(a, b)
        assert eng.rewrite_expr(expr) == expr  # rejected, no loop

    def test_non_decreasing_rule_without_gate_diverges(self):
        T = TVar("T")
        commute = Rule(
            "commute", E.Add(Wild("x", T), Wild("y", T)),
            E.Add(Wild("y", T), Wild("x", T)),
        )
        eng = RewriteEngine([commute], max_passes=4)
        with pytest.raises(RewriteError):
            eng.rewrite_expr(E.Add(a, b))

    def test_rule_order_is_priority(self):
        T = TVar("T")
        r1 = Rule("to-min", E.Add(Wild("x", T), Wild("y", T)),
                  E.Min(Wild("x", T), Wild("y", T)))
        r2 = Rule("to-max", E.Add(Wild("x", T), Wild("y", T)),
                  E.Max(Wild("x", T), Wild("y", T)))
        out = RewriteEngine([r1, r2]).rewrite_expr(E.Add(a, b))
        assert isinstance(out, E.Min)
        out = RewriteEngine([r2, r1]).rewrite_expr(E.Add(a, b))
        assert isinstance(out, E.Max)

    def test_top_down_strategy_sees_parent_first(self):
        # A fused rule at the parent must win over a child rule when
        # running top-down (the lowering configuration).
        T = TVar("T", max_bits=32)
        fused = Rule(
            "fused",
            E.Add(Wild("p", TWiden(T)),
                  F.WideningMul(Wild("x", T), Wild("y", T))),
            E.Min(Wild("p", TWiden(T)),
                  E.Cast(TWiden(T), Wild("x", T))),
        )
        child = Rule(
            "child",
            F.WideningMul(Wild("x", T), Wild("y", T)),
            E.Cast(TWiden(T), Wild("x", T)),
        )
        acc = h.var("acc", U16)
        expr = E.Add(acc, F.WideningMul(a, b))
        td = RewriteEngine([fused, child], strategy="top_down")
        assert isinstance(td.rewrite_expr(expr), E.Min)
        bu = RewriteEngine([fused, child], strategy="bottom_up")
        assert isinstance(bu.rewrite_expr(expr), E.Add)

    def test_invalid_strategy(self):
        with pytest.raises(ValueError):
            RewriteEngine([], strategy="sideways")


class TestWildcardRootedRules:
    """Wildcard-rooted rules must participate in dispatch.

    The root-class rule index used to drop rules whose lhs is a pattern
    leaf (``Wild``/``ConstWild``) into a bucket nothing ever read, so
    they silently never fired.  These are the regression tests.
    """

    T = TVar("T")

    @staticmethod
    def _only_var_b(m, ctx):
        return isinstance(m.root, E.Var) and m.root.name == "b"

    def test_wildcard_rooted_rule_fires(self):
        rename = Rule(
            "rename-b", Wild("x", self.T), h.var("bb", U8),
            predicate=self._only_var_b,
        )
        out = RewriteEngine([rename]).rewrite_expr(E.Add(a, b))
        assert out == E.Add(a, h.var("bb", U8))

    def test_rules_for_includes_wildcard_bucket(self):
        rename = Rule(
            "rename-b", Wild("x", self.T), h.var("bb", U8),
            predicate=self._only_var_b,
        )
        eng = RewriteEngine([rename])
        assert rename in eng.rules_for(E.Var("b", U8))
        assert rename in eng.rules_for(E.Add(a, b))

    def test_wildcard_and_typed_rules_keep_list_order(self):
        # Priority is list position, regardless of which bucket the
        # rule's root class landed it in.
        typed = Rule(
            "to-min", E.Add(Wild("x", self.T), Wild("y", self.T)),
            E.Min(Wild("x", self.T), Wild("y", self.T)),
        )
        wild = Rule(
            "kill-add", Wild("x", self.T), h.var("w", U8),
            predicate=lambda m, ctx: isinstance(m.root, E.Add),
        )
        out = RewriteEngine([wild, typed]).rewrite_expr(E.Add(a, b))
        assert out == h.var("w", U8)
        out = RewriteEngine([typed, wild]).rewrite_expr(E.Add(a, b))
        assert out == E.Min(a, b)


class TestRuleProvenance:
    def test_sources_parsing(self):
        r = Rule("r", a, b, source="synth:add,synth:mul")
        assert r.sources == {"synth:add", "synth:mul"}
        assert r.is_synthesized

    def test_excluded_only_when_all_sources_excluded(self):
        r = Rule("r", a, b, source="synth:add,synth:mul")
        assert not r.excluded_by({"synth:add"})
        assert r.excluded_by({"synth:add", "synth:mul"})

    def test_hand_rules_never_synthesized(self):
        r = Rule("r", a, b)
        assert not r.is_synthesized
        assert not r.excluded_by({"synth:add"})
