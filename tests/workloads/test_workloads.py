"""Workload sanity tests: the 16 benchmarks are well-formed and stress
the fixed-point idioms they claim to."""

import pytest

from repro import fpir as F
from repro.interp import evaluate
from repro.ir import expr as E
from repro.ir.types import ScalarType
from repro.lifting import lift
from repro.workloads import WORKLOADS, all_workloads, by_name


class TestRegistry:
    def test_sixteen_benchmarks(self):
        # "16 of Rake's 21 benchmarks perform fixed-point computation"
        assert len(WORKLOADS) == 16
        assert len(all_workloads()) == 16

    def test_unique_names(self):
        assert len(set(WORKLOADS)) == 16

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError):
            by_name("fir128")

    def test_cached_instances(self):
        assert by_name("add") is by_name("add")


@pytest.mark.parametrize("name", WORKLOADS)
class TestWellFormed:
    def test_expression_is_concrete(self, name):
        wl = by_name(name)
        for node in wl.expr.walk():
            assert isinstance(node.type, ScalarType)

    def test_evaluates_on_random_inputs(self, name):
        wl = by_name(name)
        env = wl.random_env(lanes=8, seed=1)
        out = evaluate(wl.expr, env)
        assert len(out) == 8
        for v in out:
            assert wl.expr.type.contains(v)

    def test_deterministic_env(self, name):
        wl = by_name(name)
        assert wl.random_env(lanes=4, seed=9) == wl.random_env(
            lanes=4, seed=9
        )

    def test_inputs_have_declared_bounds_types(self, name):
        wl = by_name(name)
        input_names = {v.name for v in wl.inputs}
        for bname in wl.var_bounds:
            assert bname in input_names

    def test_has_description_and_category(self, name):
        wl = by_name(name)
        assert wl.description
        assert wl.category in ("image", "ml", "vision", "arith")


class TestIdiomCoverage:
    """Each benchmark must actually contain the idioms the paper credits
    it with (checked on the lifted form)."""

    def lifted_classes(self, name):
        wl = by_name(name)
        from repro.analysis import BoundsAnalyzer
        from repro.lifting import Lifter

        out = Lifter().lift(wl.expr, BoundsAnalyzer(wl.var_bounds)).expr
        return {type(n) for n in out.walk()}

    def test_sobel_has_absd(self):
        assert F.Absd in self.lifted_classes("sobel3x3")

    def test_camera_pipe_has_rounding_average(self):
        assert F.RoundingHalvingAdd in self.lifted_classes("camera_pipe")

    def test_quantized_benches_have_rounding_mul_shr(self):
        for name in ("mul", "depthwise_conv", "matmul", "softmax"):
            assert F.RoundingMulShr in self.lifted_classes(name), name

    def test_l2norm_has_rounding_mul_shr(self):
        assert F.RoundingMulShr in self.lifted_classes("l2norm")

    def test_gaussians_have_widening_ops(self):
        for name in ("gaussian3x3", "gaussian5x5", "gaussian7x7"):
            classes = self.lifted_classes(name)
            assert F.WideningShl in classes or F.WideningMul in classes

    def test_fully_connected_has_mul_shr(self):
        assert F.MulShr in self.lifted_classes("fully_connected")

    def test_add_has_rounding_shift(self):
        classes = self.lifted_classes("add")
        assert F.RoundingShr in classes or F.RoundingHalvingAdd in classes

    def test_64bit_benches_use_i64_in_primitive_form(self):
        # §5.1: depthwise_conv, matmul and mul need 64-bit types when
        # written with primitive integer operations...
        for name in ("depthwise_conv", "matmul", "mul"):
            wl = by_name(name)
            assert any(
                isinstance(n.type, ScalarType) and n.type.bits == 64
                for n in wl.expr.walk()
            ), name

    def test_64bit_benches_lift_into_32bit(self):
        # ...but PITCHFORK's lifted form stays within 32 bits.
        from repro.analysis import BoundsAnalyzer
        from repro.lifting import Lifter

        for name in ("depthwise_conv", "matmul", "mul"):
            wl = by_name(name)
            lifted = Lifter().lift(
                wl.expr, BoundsAnalyzer(wl.var_bounds)
            ).expr
            assert all(
                not isinstance(n.type, ScalarType) or n.type.bits <= 32
                for n in lifted.walk()
            ), name
