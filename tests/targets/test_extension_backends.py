"""§8 extension backends: WebAssembly SIMD128 and RISC-V Vector.

"Supporting WebAssembly, PowerPC, x86 variants, and ARM32 required no
extensions to FPIR" — these tests demonstrate that: the same lifted FPIR
compiles and executes lane-exactly on backends the paper's evaluation
never touched, using only new lowering rule sets.
"""

import pytest

from repro import fpir as F
from repro.analysis import BoundsAnalyzer, Interval
from repro.interp import evaluate
from repro.ir import builders as h
from repro.ir.types import I16, U8, U16
from repro.machine.lowerer import Lowerer
from repro.pipeline import pitchfork_compile
from repro.targets import POWERPC, RISCV, WASM
from repro.workloads import WORKLOADS, by_name


@pytest.mark.parametrize("target", [WASM, RISCV, POWERPC], ids=lambda t: t.name)
@pytest.mark.parametrize("name", WORKLOADS)
def test_all_workloads_end_to_end(name, target):
    wl = by_name(name)
    prog = pitchfork_compile(wl.expr, target, var_bounds=wl.var_bounds)
    env = wl.random_env(lanes=16, seed=77)
    assert prog.run(env) == evaluate(wl.expr, env)


class TestWasm:
    def test_q15mulr_deterministic_fallback(self):
        """§8.3: without a bounds proof the deterministic saturating form
        must be chosen, not the relaxed one."""
        node = F.RoundingMulShr(
            h.var("x", I16), h.var("y", I16), h.const(I16, 15)
        )
        prog = pitchfork_compile(node, WASM)
        assert prog.instructions == ["q15mulr_sat_s"]

    def test_relaxed_q15mulr_with_bounds_proof(self):
        """§8.3: with INT16_MIN provably excluded, the relaxed (cheaper)
        instruction becomes deterministic and is selected."""
        node = F.RoundingMulShr(
            h.var("x", I16), h.var("y", I16), h.const(I16, 15)
        )
        bounds = {"x": Interval(-32767, 32767)}
        prog = pitchfork_compile(node, WASM, var_bounds=bounds)
        assert prog.instructions == ["relaxed_q15mulr_s"]
        # and it is cheaper than the saturating form
        plain = pitchfork_compile(node, WASM)
        assert prog.cost().total < plain.cost().total

    def test_avgr_native(self):
        prog = pitchfork_compile(
            F.RoundingHalvingAdd(h.var("a", U8), h.var("b", U8)), WASM
        )
        assert prog.instructions == ["avgr_u"]

    def test_halving_add_shares_x86_magic(self):
        """§3.1.1: x86, WebAssembly and PowerPC share the fast
        non-widening halving_add emulation."""
        prog = pitchfork_compile(
            F.HalvingAdd(h.var("a", U8), h.var("b", U8)), WASM
        )
        names = prog.instructions
        assert any("and" in n for n in names)
        assert any("xor" in n for n in names)
        assert not any("extend" in n for n in names)  # non-widening!

    def test_dot_product(self):
        a0, w0 = h.var("a0", I16), h.var("w0", I16)
        a1, w1 = h.var("a1", I16), h.var("w1", I16)
        expr = F.WideningMul(a0, w0) + F.WideningMul(a1, w1)
        prog = pitchfork_compile(expr, WASM)
        assert prog.instructions == ["dot_i16x8_s"]


class TestRiscV:
    def test_both_average_rounding_modes_native(self):
        """§8.2: RVV supports round-up AND round-down averaging."""
        a, b = h.var("a", U8), h.var("b", U8)
        down = pitchfork_compile(F.HalvingAdd(a, b), RISCV)
        up = pitchfork_compile(F.RoundingHalvingAdd(a, b), RISCV)
        assert down.instructions == ["vaadd[rdn]"]
        assert up.instructions == ["vaadd[rnu]"]

    def test_vsmul_is_single_instruction(self):
        node = F.RoundingMulShr(
            h.var("x", I16), h.var("y", I16), h.const(I16, 15)
        )
        prog = pitchfork_compile(node, RISCV)
        assert prog.instructions == ["vsmul"]

    def test_vnclip_fuses_rounding_narrow(self):
        w = h.var("w", U16)
        node = F.SaturatingNarrow(F.RoundingShr(w, h.const(U16, 4)))
        prog = pitchfork_compile(node, RISCV)
        assert prog.instructions == ["vnclip[rnu]"]

    def test_mixed_sign_widening_multiply(self):
        # vwmulsu: signed x unsigned, no other ISA here has it
        node = F.WideningMul(h.var("x", h.I8), h.var("y", U8))
        prog = pitchfork_compile(node, RISCV)
        assert prog.instructions == ["vwmul"]

    def test_q31_multiply_needs_no_64bit(self):
        wl = by_name("mul")
        prog = pitchfork_compile(wl.expr, RISCV, var_bounds=wl.var_bounds)
        assert "vsmul" in prog.instructions
        assert len(prog.instructions) <= 3

    def test_rounding_halving_sub_stays_excluded(self):
        """§8.2: RVV's vasub[rnu] (rounding halving sub) exists in
        hardware but is deliberately NOT in FPIR — no rule may target
        a rounding-subtract-average instruction."""
        for rule in RISCV.lowering_rules:
            assert "vasub[rnu]" not in repr(rule.rhs)


class TestNoFpirExtensionsNeeded:
    def test_rule_sets_only_reference_existing_fpir(self):
        from repro.fpir.ops import FPIR_OPS, FPIRInstr

        known = set(FPIR_OPS.values())
        for target in (WASM, RISCV, POWERPC):
            for rule in target.lowering_rules:
                for node in rule.lhs.walk():
                    if isinstance(node, FPIRInstr):
                        assert type(node) in known
