"""§3.1.1's rule-economy claim, measured on this very repository.

"If there are k ways for a programmer to write rounding_halving_add and
n backends that implement rounding_halving_add, without
rounding_halving_add in the IR itself, a compiler requires k*n rules...
Instead, FPIR requires only k + n + 1 rules: k patterns that map integer
arithmetic to rounding_halving_add, n mappings ... to the target
instructions, and one efficient lowering for targets that don't support
this operation."
"""

from repro import fpir as F
from repro.lifting import HAND_RULES, SYNTHESIZED_RULES
from repro.targets import ALL_TARGETS


def _rules_producing(cls):
    """Lifting rules whose RHS introduces the given FPIR instruction."""
    out = []
    for r in HAND_RULES + SYNTHESIZED_RULES:
        if any(isinstance(n, cls) for n in r.rhs.walk()):
            out.append(r)
    return out


def _rules_consuming(cls, target):
    """Lowering rules whose LHS roots at the given FPIR instruction."""
    return [
        r for r in target.lowering_rules if isinstance(r.lhs, cls)
    ]


class TestRuleEconomy:
    def test_rounding_halving_add_is_k_plus_n_plus_1(self):
        k_rules = _rules_producing(F.RoundingHalvingAdd)
        k = len(k_rules)
        assert k >= 2  # the div and shr spellings at least

        n = 0
        emulated = 0
        for target in ALL_TARGETS.values():
            direct = _rules_consuming(F.RoundingHalvingAdd, target)
            if direct:
                n += len(direct)
            else:
                emulated += 1
        # every backend either maps it directly or falls back to the ONE
        # definitional expansion (no per-backend emulation rules needed:
        # rounding_halving_add is supported natively on all six)
        total = k + n + emulated
        # the k*n direct-translation alternative would need:
        naive = k * len(ALL_TARGETS)
        assert total < naive

    def test_halving_add_shares_one_emulation_per_backend_class(self):
        """halving_add is native on ARM/HVX/RVV and magic-emulated on the
        x86-like backends — the §3.1.1 example."""
        native, magic = [], []
        for name, target in ALL_TARGETS.items():
            direct = _rules_consuming(F.HalvingAdd, target)
            if direct and not any("magic" in r.name for r in direct):
                native.append(name)
            elif any("magic" in r.name for r in direct):
                magic.append(name)
        assert set(native) >= {"arm-neon", "hexagon-hvx", "riscv-rvv"}
        assert set(magic) >= {"x86-avx2", "wasm-simd128", "powerpc-vsx"}

    def test_every_backend_covers_every_fpir_op(self):
        """Totality: every FPIR instruction either has a lowering rule on
        a backend or is covered by definitional expansion — proven by
        compiling one instance of each op everywhere."""
        from repro.interp import evaluate
        from repro.ir import builders as h
        from repro.pipeline import pitchfork_compile
        from tests.fpir.test_expansion import _sample_node

        env = {
            "a": [3, 200], "b": [250, 7],
            "x": [-32768, 1000], "y": [32767, -3],
            "w": [4080, 65535],
        }
        for cls in F.FPIR_OPS.values():
            node = _sample_node(cls)
            ref = evaluate(node, env, lanes=2)
            for target in ALL_TARGETS.values():
                prog = pitchfork_compile(node, target)
                assert prog.run(env) == ref, (cls.name, target.name)
