"""Target ISA model tests: specs, target ops, generic mapping."""

import pytest

from repro import fpir as F
from repro.ir import builders as h
from repro.ir import expr as E
from repro.ir.types import BOOL, I16, I64, U8, U16, U64
from repro.interp import evaluate
from repro.targets import ALL_TARGETS, ARM, HVX, X86, by_name, target_op
from repro.targets.generic import UnsupportedType
from repro.targets.isa import is_lowered
from repro.targets import arm as arm_mod

a = h.var("a", U8)
b = h.var("b", U8)


class TestTargetDescs:
    def test_register_widths(self):
        assert X86.desc.register_bits == 256
        assert ARM.desc.register_bits == 128
        assert HVX.desc.register_bits == 1024

    def test_natural_lanes_match_paper_schedules(self):
        # §2.2: "vector-widths of 16, 32 and 128 for ARM, x86 and HVX"
        assert ARM.desc.natural_lanes == 16
        assert X86.desc.natural_lanes == 32
        assert HVX.desc.natural_lanes == 128

    def test_hvx_has_no_64bit(self):
        assert HVX.desc.max_elem_bits == 32

    def test_by_name(self):
        assert by_name("arm-neon") is ARM
        with pytest.raises(ValueError):
            by_name("riscv")

    def test_all_targets(self):
        assert set(ALL_TARGETS) == {
            "x86-avx2", "arm-neon", "hexagon-hvx",
            "wasm-simd128", "riscv-rvv", "powerpc-vsx",
        }

    def test_paper_targets(self):
        from repro.targets import PAPER_TARGETS

        assert [t.name for t in PAPER_TARGETS] == [
            "x86-avx2", "arm-neon", "hexagon-hvx",
        ]


class TestTargetOps:
    def test_target_op_children_and_type(self):
        op = target_op(arm_mod.UADDL, U16, a, b)
        assert op.type == U16
        assert op.operands == (a, b)
        assert op.spec.name == "uaddl"

    def test_target_op_equality(self):
        x = target_op(arm_mod.UADDL, U16, a, b)
        y = target_op(arm_mod.UADDL, U16, a, b)
        assert x == y and hash(x) == hash(y)
        assert x != target_op(arm_mod.SADDL, U16, a, b)

    def test_reference_semantics_evaluates(self):
        op = target_op(arm_mod.UADDL, U16, a, b)
        sem = op.reference_semantics()
        assert sem == F.WideningAdd(a, b)

    def test_execution_through_interpreter(self):
        op = target_op(arm_mod.UQADD, U8, a, b)
        out = evaluate(op, {"a": [200], "b": [100]})
        assert out == [255]

    def test_fused_spec_semantics(self):
        acc = h.var("acc", U16)
        op = target_op(arm_mod.UMLAL, U16, acc, a, b)
        out = evaluate(op, {"acc": [100], "a": [10], "b": [10]})
        assert out == [200]

    def test_is_lowered(self):
        assert is_lowered(target_op(arm_mod.UADDL, U16, a, b))
        assert not is_lowered(E.Add(a, b))


class TestGenericMapping:
    def test_core_ops_map(self):
        node = E.Add(a, b)
        op = ARM.generic.map_node(node)
        assert op.spec.isa == "arm-neon"
        assert evaluate(op, {"a": [3], "b": [4]}) == [7]

    def test_spec_cache(self):
        s1 = ARM.generic.spec_for(E.Add(a, b))
        s2 = ARM.generic.spec_for(E.Add(b, a))
        assert s1 is s2

    def test_mnemonics_reflect_type(self):
        assert "16b" in ARM.generic.spec_for(E.Add(a, b)).name
        w = h.var("w", U16)
        assert "8h" in ARM.generic.spec_for(E.Add(w, w)).name

    def test_cast_specs(self):
        widen = ARM.generic.spec_for(E.Cast(U16, a))
        assert widen.cost > 0
        reinterpret = ARM.generic.spec_for(E.Reinterpret(h.I8, a))
        assert reinterpret.cost == 0

    def test_hvx_rejects_64bit(self):
        x = h.var("x", I64)
        with pytest.raises(UnsupportedType):
            HVX.generic.spec_for(E.Add(x, x))

    def test_arm_allows_64bit(self):
        x = h.var("x", I64)
        assert ARM.generic.spec_for(E.Add(x, x)).cost > 0

    def test_cmp_select_use_data_width(self):
        w = h.var("w", U16)
        cmp_spec = ARM.generic.spec_for(E.LT(w, w))
        assert "8h" in cmp_spec.name


class TestRuleSets:
    @pytest.mark.parametrize("target", [X86, ARM, HVX], ids=lambda t: t.name)
    def test_rule_names_unique(self, target):
        names = [r.name for r in target.lowering_rules]
        assert len(names) == len(set(names))

    def test_arm_has_five_rule_classes(self):
        names = {r.name for r in ARM.lowering_rules}
        assert "arm-umlal" in names  # fused
        assert "arm-uaddl" in names  # direct
        assert "arm-rshrn-predicated" in names  # predicated
        assert "arm-sqrdmulh-16" in names  # specific constants
        # compound lowerings live on x86 (ARM implements most of FPIR)

    def test_x86_compound_rules_exist(self):
        names = {r.name for r in X86.lowering_rules}
        assert "x86-halving-add-magic" in names
        assert "x86-absd-unsigned" in names
        assert "x86-vpackus-predicated" in names

    def test_hvx_synth_rules_tagged(self):
        synth = [r for r in HVX.lowering_rules if r.is_synthesized]
        assert len(synth) >= 6

    def test_rake_extras_only_on_rake_targets(self):
        assert X86.rake_extra_rules == []
        assert len(HVX.rake_extra_rules) >= 1
