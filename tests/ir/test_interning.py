"""Hash-cons interning: structurally equal exprs are reference-equal."""

from repro import fpir as F
from repro.ir import builders as h
from repro.ir import expr as E
from repro.ir.types import U8, U16
from repro.trs.pattern import ConstWild, TVar, Wild

a = h.var("a", U8)
b = h.var("b", U8)


class TestInterning:
    def test_equal_constructions_are_identical(self):
        assert E.Add(a, b) is E.Add(a, b)
        assert h.u16(a) is h.u16(a)
        assert E.Const(U8, 7) is E.Const(U8, 7)

    def test_distinct_constructions_are_distinct(self):
        assert E.Add(a, b) is not E.Add(b, a)
        assert E.Const(U8, 7) is not E.Const(U16, 7)

    def test_nested_trees_share_identity(self):
        x = E.Min(E.Add(a, b), E.Max(a, b))
        y = E.Min(E.Add(a, b), E.Max(a, b))
        assert x is y
        assert x.children[0] is y.children[0]

    def test_fpir_nodes_intern_too(self):
        assert F.WideningAdd(a, b) is F.WideningAdd(a, b)

    def test_interned_nodes_marked_canonical(self):
        assert getattr(E.Add(a, b), "_canon", False)

    def test_equality_and_hash_still_structural(self):
        x, y = E.Add(a, b), E.Add(a, b)
        assert x == y and hash(x) == hash(y)
        assert x != E.Add(b, a)

    def test_with_children_rebuilds_interned(self):
        x = E.Add(a, b)
        assert x.with_children([a, b]) is x or x.with_children([a, b]) == x
        assert x.with_children([b, a]) is E.Add(b, a)


class TestPatternNodesNotInterned:
    """Wildcards carry per-rule type constraints their ``_key`` omits —
    interning them would conflate same-named wildcards across rules."""

    def test_wild_not_interned(self):
        T1, T2 = TVar("T", max_bits=16), TVar("T", max_bits=32)
        w1, w2 = Wild("x", T1), Wild("x", T2)
        assert w1 is not w2
        assert not getattr(w1, "_canon", False)

    def test_constwild_not_interned(self):
        assert ConstWild("c", U8) is not ConstWild("c", U8)

    def test_composite_over_wildcards_not_interned(self):
        T = TVar("T")
        pat = E.Add(Wild("x", T), Wild("y", T))
        assert not getattr(pat, "_canon", False)
        assert pat is not E.Add(Wild("x", T), Wild("y", T))
