"""Unit tests for the scalar type system."""

import pytest
from hypothesis import given
import hypothesis.strategies as st

from repro.ir.types import (
    ALL_TYPES,
    ARITH_TYPES,
    BOOL,
    I8,
    I16,
    I32,
    I64,
    U8,
    U16,
    U32,
    U64,
    ScalarType,
    type_from_code,
)


class TestRanges:
    def test_unsigned_ranges(self):
        assert U8.min_value == 0 and U8.max_value == 255
        assert U16.max_value == 65535
        assert U32.max_value == 2**32 - 1
        assert U64.max_value == 2**64 - 1

    def test_signed_ranges(self):
        assert I8.min_value == -128 and I8.max_value == 127
        assert I16.min_value == -32768 and I16.max_value == 32767
        assert I32.min_value == -(2**31)
        assert I64.max_value == 2**63 - 1

    def test_bool_range(self):
        assert BOOL.min_value == 0 and BOOL.max_value == 1

    @pytest.mark.parametrize("t", ARITH_TYPES)
    def test_contains_boundaries(self, t):
        assert t.contains(t.min_value)
        assert t.contains(t.max_value)
        assert not t.contains(t.max_value + 1)
        assert not t.contains(t.min_value - 1)


class TestWrapSaturate:
    def test_wrap_unsigned(self):
        assert U8.wrap(256) == 0
        assert U8.wrap(-1) == 255
        assert U8.wrap(511) == 255

    def test_wrap_signed(self):
        assert I8.wrap(128) == -128
        assert I8.wrap(-129) == 127
        assert I8.wrap(255) == -1

    def test_saturate(self):
        assert U8.saturate(300) == 255
        assert U8.saturate(-5) == 0
        assert I8.saturate(200) == 127
        assert I8.saturate(-200) == -128
        assert I8.saturate(42) == 42

    @given(st.integers(min_value=-(2**70), max_value=2**70))
    def test_wrap_idempotent(self, v):
        for t in ARITH_TYPES:
            w = t.wrap(v)
            assert t.contains(w)
            assert t.wrap(w) == w

    @given(st.integers(min_value=-(2**70), max_value=2**70))
    def test_wrap_congruent_mod_2n(self, v):
        for t in ARITH_TYPES:
            assert (t.wrap(v) - v) % (1 << t.bits) == 0


class TestDerivedTypes:
    def test_widen(self):
        assert U8.widen() == U16
        assert I16.widen() == I32
        assert U64.widen() == ScalarType(128, False)

    def test_narrow(self):
        assert U16.narrow() == U8
        assert I64.narrow() == I32

    def test_widen_narrow_roundtrip(self):
        for t in ARITH_TYPES:
            if t.can_widen():
                assert t.widen().narrow() == t

    def test_narrow_u8_fails(self):
        with pytest.raises(ValueError):
            U8.narrow()

    def test_widen_bool_fails(self):
        with pytest.raises(ValueError):
            BOOL.widen()

    def test_with_signed(self):
        assert U16.with_signed(True) == I16
        assert I16.with_signed(False) == U16


class TestMisc:
    def test_codes(self):
        assert U8.code == "u8" and I32.code == "i32" and BOOL.code == "bool"

    def test_from_code(self):
        for t in ALL_TYPES:
            assert type_from_code(t.code) == t
        with pytest.raises(ValueError):
            type_from_code("f32")

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            ScalarType(7, False)

    def test_signed_bool_invalid(self):
        with pytest.raises(ValueError):
            ScalarType(1, True)

    def test_hashable(self):
        assert len({U8, U8, I8}) == 2
