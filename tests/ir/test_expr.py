"""Unit tests for core IR expression nodes."""

import pytest

from repro.ir import expr as E
from repro.ir import builders as h
from repro.ir.types import BOOL, I8, I16, U8, U16


@pytest.fixture
def a():
    return h.var("a", U8)


@pytest.fixture
def b():
    return h.var("b", U8)


class TestConstruction:
    def test_const_wraps_on_entry(self):
        assert E.Const(U8, 256).value == 0
        assert E.Const(I8, 255).value == -1

    def test_const_rejects_non_int(self):
        with pytest.raises(TypeError):
            E.Const(U8, "nope")

    def test_var_type(self, a):
        assert a.type == U8 and a.name == "a"

    def test_binary_requires_same_type(self, a):
        c = h.var("c", U16)
        with pytest.raises(E.TypeError_):
            E.Add(a, c)

    def test_shift_allows_sign_mismatch(self, a):
        s = h.var("s", I8)
        assert E.Shl(a, s).type == U8

    def test_shift_rejects_width_mismatch(self, a):
        s = h.var("s", I16)
        with pytest.raises(E.TypeError_):
            E.Shl(a, s)

    def test_cmp_returns_bool(self, a, b):
        assert E.LT(a, b).type == BOOL

    def test_select_needs_bool_cond(self, a, b):
        with pytest.raises(E.TypeError_):
            E.Select(a, a, b)
        sel = E.Select(E.LT(a, b), a, b)
        assert sel.type == U8

    def test_select_branches_must_match(self, a, b):
        with pytest.raises(E.TypeError_):
            E.Select(E.LT(a, b), a, h.var("w", U16))

    def test_reinterpret_width_check(self, a):
        assert E.Reinterpret(I8, a).type == I8
        with pytest.raises(E.TypeError_):
            E.Reinterpret(I16, a)

    def test_cast_to_bool_rejected(self, a):
        with pytest.raises(E.TypeError_):
            E.Cast(BOOL, a)

    def test_arith_rejects_bool(self, a, b):
        cond = E.LT(a, b)
        with pytest.raises(E.TypeError_):
            E.Add(cond, cond)

    def test_min_accepts_any_matching(self, a, b):
        assert E.Min(a, b).type == U8

    def test_neg_rejects_bool(self, a, b):
        with pytest.raises(E.TypeError_):
            E.Neg(E.LT(a, b))

    def test_not_requires_bool(self, a, b):
        assert E.Not(E.LT(a, b)).type == BOOL
        with pytest.raises(E.TypeError_):
            E.Not(a)


class TestIdentity:
    def test_structural_equality(self, a, b):
        assert E.Add(a, b) == E.Add(a, b)
        assert E.Add(a, b) != E.Add(b, a)
        assert hash(E.Add(a, b)) == hash(E.Add(a, b))

    def test_different_classes_differ(self, a, b):
        assert E.Add(a, b) != E.Sub(a, b)

    def test_const_identity(self):
        assert E.Const(U8, 3) == E.Const(U8, 3)
        assert E.Const(U8, 3) != E.Const(I8, 3)
        assert E.Const(U8, 3) != E.Const(U8, 4)

    def test_immutable(self, a):
        with pytest.raises(AttributeError):
            a.name = "z"

    def test_usable_in_sets(self, a, b):
        s = {E.Add(a, b), E.Add(a, b), E.Sub(a, b)}
        assert len(s) == 2


class TestStructure:
    def test_children(self, a, b):
        assert E.Add(a, b).children == (a, b)
        assert E.Const(U8, 1).children == ()
        sel = E.Select(E.LT(a, b), a, b)
        assert len(sel.children) == 3

    def test_with_children(self, a, b):
        e = E.Add(a, b)
        e2 = e.with_children([b, a])
        assert e2 == E.Add(b, a)

    def test_with_children_preserves_non_expr_fields(self, a):
        e = E.Cast(U16, a)
        e2 = e.with_children([h.var("z", U8)])
        assert e2.to == U16

    def test_with_children_arity_check(self, a, b):
        with pytest.raises(ValueError):
            E.Add(a, b).with_children([a, b, a])

    def test_size(self, a, b):
        assert a.size == 1
        assert E.Add(a, b).size == 3
        assert E.Add(E.Add(a, b), E.Const(U8, 1)).size == 5

    def test_walk_post_order(self, a, b):
        e = E.Add(a, b)
        nodes = list(e.walk())
        assert nodes == [a, b, e]

    def test_free_vars(self, a, b):
        e = E.Add(E.Mul(a, b), a)
        assert E.free_vars(e) == (a, b)


class TestOperatorSugar:
    def test_int_coercion(self, a):
        e = a + 1
        assert isinstance(e, E.Add)
        assert e.b == E.Const(U8, 1)

    def test_all_operators(self, a, b):
        assert isinstance(a - b, E.Sub)
        assert isinstance(a * 2, E.Mul)
        assert isinstance(a // b, E.Div)
        assert isinstance(a % b, E.Mod)
        assert isinstance(a << 1, E.Shl)
        assert isinstance(a >> 1, E.Shr)
        assert isinstance(a & b, E.BitAnd)
        assert isinstance(a | b, E.BitOr)
        assert isinstance(a ^ b, E.BitXor)
        assert isinstance(-a, E.Neg)


class TestBuilders:
    def test_cast_skips_identity(self, a):
        assert h.u8(a) is a
        assert isinstance(h.u16(a), E.Cast)

    def test_cast_of_int_is_const(self):
        assert h.u16(300) == E.Const(U16, 300)

    def test_clamp(self, a):
        e = h.clamp(h.u16(a), 10, 20)
        assert isinstance(e, E.Min)
        assert isinstance(e.a, E.Max)

    def test_minimum_coerces_int(self, a):
        e = h.minimum(a, 255)
        assert e.b == E.Const(U8, 255)

    def test_pair_rejects_two_ints(self):
        with pytest.raises(TypeError):
            h.minimum(1, 2)
