"""Unit tests for traversal utilities and the pretty-printer."""

from repro.ir import expr as E
from repro.ir import builders as h
from repro.ir.printer import to_string
from repro.ir.traversal import (
    contains,
    subexpressions,
    substitute_vars,
    transform_bottom_up,
    transform_top_down,
)
from repro.ir.types import U8, U16

a = h.var("a", U8)
b = h.var("b", U8)


class TestTransform:
    def test_bottom_up_identity(self):
        e = E.Add(a, b)
        assert transform_bottom_up(e, lambda n: None) == e

    def test_bottom_up_replaces_leaves_then_parents(self):
        order = []

        def fn(n):
            order.append(type(n).__name__)
            return None

        transform_bottom_up(E.Add(a, E.Mul(a, b)), fn)
        assert order == ["Var", "Var", "Var", "Mul", "Add"]

    def test_bottom_up_rebuild(self):
        def swap_vars(n):
            if isinstance(n, E.Var) and n.name == "a":
                return b
            return None

        assert transform_bottom_up(E.Add(a, b), swap_vars) == E.Add(b, b)

    def test_top_down_sees_root_first(self):
        seen = []

        def fn(n):
            seen.append(type(n).__name__)
            return None

        transform_top_down(E.Add(a, b), fn)
        assert seen[0] == "Add"

    def test_substitute_vars(self):
        e = E.Add(a, b)
        out = substitute_vars(e, {"a": E.Const(U8, 7)})
        assert out == E.Add(E.Const(U8, 7), b)

    def test_substitute_missing_keeps(self):
        assert substitute_vars(a, {}) == a


class TestEnumeration:
    def test_subexpressions_distinct(self):
        e = E.Add(E.Mul(a, b), E.Mul(a, b))
        subs = list(subexpressions(e))
        # a, b, Mul(a,b), Add — the duplicate Mul appears once.
        assert len(subs) == 4

    def test_subexpressions_size_cap(self):
        e = E.Add(E.Mul(a, b), b)
        subs = list(subexpressions(e, max_size=1))
        assert set(subs) == {a, b}

    def test_contains(self):
        e = E.Add(E.Mul(a, b), b)
        assert contains(e, E.Mul(a, b))
        assert not contains(e, E.Mul(b, a))


class TestPrinter:
    def test_infix(self):
        assert to_string(E.Add(a, b)) == "a + b"
        assert to_string(E.Mul(E.Add(a, b), b)) == "(a + b) * b"

    def test_cast(self):
        assert to_string(h.u16(a)) == "u16(a)"

    def test_min_max_call_syntax(self):
        assert to_string(h.minimum(a, 3)) == "min(a, 3)"

    def test_select(self):
        s = E.Select(E.LT(a, b), a, b)
        assert to_string(s) == "select(a < b, a, b)"

    def test_reinterpret(self):
        from repro.ir.types import I8

        assert to_string(E.Reinterpret(I8, a)) == "reinterpret<i8>(a)"

    def test_repr_is_printer(self):
        assert repr(E.Add(a, b)) == "a + b"

    def test_fpir_printing(self):
        from repro import fpir as F

        assert to_string(F.WideningAdd(a, b)) == "widening_add(a, b)"
        assert (
            to_string(F.SaturatingCast(U16, h.u16(a)))
            == "saturating_cast<u16>(u16(a))"
        )
