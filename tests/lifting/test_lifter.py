"""Lifting tests: individual rules, Figure 2/4 reproductions, semantics
preservation of the whole pass."""

import random

import pytest
from hypothesis import given, settings
import hypothesis.strategies as st

from repro import fpir as F
from repro.analysis import BoundsAnalyzer, Interval
from repro.interp import evaluate
from repro.ir import builders as h
from repro.ir import expr as E
from repro.ir.expr import free_vars
from repro.ir.types import I16, I32, U8, U16, U32
from repro.lifting import Lifter, lift
from repro.workloads import by_name

a = h.var("a", U8)
b = h.var("b", U8)
c = h.var("c", U8)


class TestIndividualLifts:
    def test_widening_add(self):
        assert lift(h.u16(a) + h.u16(b)) == F.WideningAdd(a, b)

    def test_widening_sub_signed(self):
        assert lift(h.i16(a) - h.i16(b)) == F.WideningSub(a, b)

    def test_widening_mul(self):
        assert lift(h.u16(a) * h.u16(b)) == F.WideningMul(a, b)

    def test_widening_mul_pow2_becomes_shl(self):
        out = lift(h.u16(a) * 4)
        assert out == F.WideningShl(a, h.const(U8, 2))

    def test_extending_add(self):
        w = h.var("w", U16)
        assert lift(w + h.u16(a)) == F.ExtendingAdd(w, a)
        assert lift(h.u16(a) + w) == F.ExtendingAdd(w, a)

    def test_three_way_add_normal_form(self):
        # u16(a) + u16(b) + u16(c): one widening add feeding an
        # extending accumulate — no widening casts survive.
        out = lift(h.u16(a) + h.u16(b) + h.u16(c))
        assert out == F.ExtendingAdd(F.WideningAdd(a, b), c)

    def test_figure4_reassociation(self):
        # The reassociation rule proper: extending_add(extending_add(
        # x, y), z) -> widening_add(y, z) + x  (exercised by the Sobel
        # kernel, where the middle term is a widening shift).
        kernel = h.u16(a) + h.u16(b) * 2 + h.u16(c)
        out = lift(kernel)
        assert isinstance(out, E.Add)
        assert F.WideningAdd(a, c) in list(out.walk())

    def test_saturating_cast_from_min(self):
        w = h.var("w", U16)
        assert lift(h.u8(h.minimum(w, 255))) == F.SaturatingNarrow(w)

    def test_saturating_cast_from_clamp(self):
        x = h.var("x", I16)
        out = lift(h.u8(h.clamp(x, 0, 255)))
        assert out == F.SaturatingCast(U8, x)

    def test_saturating_add_fusion(self):
        out = lift(h.u8(h.minimum(h.u16(a) + h.u16(b), 255)))
        assert out == F.SaturatingAdd(a, b)

    def test_saturating_sub_fusion(self):
        out = lift(h.u8(h.clamp(h.i16(a) - h.i16(b), 0, 255)))
        assert out == F.SaturatingSub(a, b)

    def test_halving_add(self):
        out = lift(h.u8((h.u16(a) + h.u16(b)) // 2))
        assert out == F.HalvingAdd(a, b)

    def test_halving_add_shift_form(self):
        out = lift(h.u8((h.u16(a) + h.u16(b)) >> 1))
        assert out == F.HalvingAdd(a, b)

    def test_rounding_halving_add(self):
        out = lift(h.u8((h.u16(a) + h.u16(b) + 1) >> 1))
        assert out == F.RoundingHalvingAdd(a, b)

    def test_halving_sub(self):
        x, y = h.var("x", h.I8), h.var("y", h.I8)
        out = lift(h.i8((h.i16(x) - h.i16(y)) >> 1))
        assert out == F.HalvingSub(x, y)

    def test_rounding_shr_with_provable_bounds(self):
        w = h.var("w", U16)
        analyzer = BoundsAnalyzer({"w": Interval(0, 4080)})
        out = Lifter().lift((w + 8) >> 4, analyzer).expr
        assert out == F.RoundingShr(w, h.const(U16, 4))

    def test_rounding_shr_blocked_without_bounds(self):
        w = h.var("w", U16)  # full range: +8 may overflow
        out = lift((w + 8) >> 4)
        assert not any(isinstance(n, F.RoundingShr) for n in out.walk())

    def test_mul_shr(self):
        x, y = h.var("x", I16), h.var("y", I16)
        src = h.i16(h.clamp((h.i32(x) * h.i32(y)) >> 12, -32768, 32767))
        assert lift(src) == F.MulShr(x, y, h.const(U16, 12))

    def test_rounding_mul_shr(self):
        x, y = h.var("x", I16), h.var("y", I16)
        src = h.i16(
            h.clamp((h.i32(x) * h.i32(y) + (1 << 14)) >> 15, -32768, 32767)
        )
        assert lift(src) == F.RoundingMulShr(x, y, h.const(U16, 15))

    def test_absd_select(self):
        out = lift(h.select(E.GT(a, b), a - b, b - a))
        assert out == F.Absd(a, b)

    def test_absd_maxmin(self):
        out = lift(h.maximum(a, b) - h.minimum(a, b))
        assert out == F.Absd(a, b)

    def test_absd_signed_gets_reinterpret(self):
        x, y = h.var("x", h.I8), h.var("y", h.I8)
        out = lift(h.select(E.GT(x, y), x - y, y - x))
        assert out == E.Reinterpret(h.I8, F.Absd(x, y))

    def test_abs(self):
        x = h.var("x", h.I8)
        out = lift(h.select(E.GT(x, 0), x, -x))
        assert out == E.Reinterpret(h.I8, F.Abs(x))

    def test_synthesized_signed_widen_shl(self):
        # §4.1's rule, from the synthesized set
        out = lift(h.i16(a) << 6)
        assert out == E.Reinterpret(
            I16, F.WideningShl(a, h.const(U8, 6))
        )

    def test_synthesized_rule_respects_exclusion(self):
        out = lift(h.i16(a) << 6, exclude_sources={"synth:add"})
        assert not any(isinstance(n, F.WideningShl) for n in out.walk())

    def test_hand_only_mode(self):
        out = lift(h.i16(a) << 6, use_synthesized=False)
        assert not any(isinstance(n, F.WideningShl) for n in out.walk())


class TestFigure2:
    def test_sobel_kernel_lifts_to_figure_2c(self):
        kernel = h.u16(a) + h.u16(b) * 2 + h.u16(c)
        out = lift(kernel)
        assert out == E.Add(
            F.WideningAdd(a, c),
            F.WideningShl(b, h.const(U8, 1)),
        )

    def test_full_sobel_shape(self):
        wl = by_name("sobel3x3")
        out = lift(wl.expr)
        names = {type(n).__name__ for n in out.walk()}
        assert "SaturatingNarrow" in names or "SaturatingAdd" in names
        assert "Absd" in names
        assert "WideningAdd" in names
        assert "WideningShl" in names
        # no residual widening casts in the kernel computation
        assert not any(
            isinstance(n, E.Cast) and n.to.bits > n.value.type.bits
            for n in out.walk()
        )


class TestSemanticsPreservation:
    """The whole lifting pass must be meaning-preserving on every
    workload — checked lane-exactly on random inputs."""

    @pytest.mark.parametrize(
        "name",
        [
            "add", "average_pool", "camera_pipe", "conv3x3a16",
            "depthwise_conv", "fully_connected", "gaussian3x3",
            "gaussian5x5", "gaussian7x7", "l2norm", "matmul",
            "max_pool", "mean", "mul", "sobel3x3", "softmax",
        ],
    )
    def test_lift_preserves_semantics(self, name):
        wl = by_name(name)
        lifted = Lifter().lift(
            wl.expr, BoundsAnalyzer(wl.var_bounds)
        ).expr
        env = wl.random_env(lanes=32, seed=5)
        assert evaluate(lifted, env) == evaluate(wl.expr, env)

    def test_lift_preserves_type_and_vars(self):
        wl = by_name("sobel3x3")
        lifted = lift(wl.expr)
        assert lifted.type == wl.expr.type
        assert set(free_vars(lifted)) <= set(free_vars(wl.expr))


@settings(max_examples=40, deadline=None)
@given(data=st.data())
def test_lift_random_small_expressions(data):
    """Property: lifting random expression shapes never changes meaning."""
    rng_seed = data.draw(st.integers(0, 2**16), label="seed")
    rng = random.Random(rng_seed)
    x, y = h.var("x", U8), h.var("y", U8)

    def gen(depth):
        """Generate a random *u8-typed* expression."""
        if depth == 0:
            return rng.choice([x, y, h.const(U8, rng.randrange(256))])
        op = rng.randrange(6)
        if op == 0:
            return h.u8((h.u16(gen(0)) + h.u16(gen(0))) >> 1)
        if op == 1:
            return h.u8(h.minimum(h.u16(gen(0)) + h.u16(gen(0)), 255))
        if op == 2:
            return h.maximum(gen(depth - 1), gen(depth - 1))
        if op == 3:
            le = gen(depth - 1)
            return le + le
        if op == 4:
            m = rng.choice([2, 3, 4, 8])
            return h.u8(h.minimum(h.u16(gen(0)) * m, 255))
        return h.minimum(gen(depth - 1), gen(depth - 1))

    expr = gen(2)
    lifted = lift(expr)
    env = {
        "x": [rng.randrange(256) for _ in range(16)],
        "y": [rng.randrange(256) for _ in range(16)],
    }
    assert evaluate(lifted, env) == evaluate(expr, env)
