"""Robustness fuzzing: the full lift+lower pipeline must terminate and
preserve semantics on randomly generated well-typed expressions —
broader shapes than the benchmarks exercise."""

import random

import pytest
from hypothesis import given, settings
import hypothesis.strategies as st

from repro import fpir as F
from repro.interp import evaluate
from repro.ir import builders as h
from repro.ir import expr as E
from repro.ir.types import I16, U8, U16
from repro.lifting import lift
from repro.pipeline import pitchfork_compile
from repro.targets import ARM, HVX, X86


def _gen_u8(rng, depth):
    """Random u8-typed expression with realistic fixed-point shapes."""
    if depth == 0:
        choice = rng.randrange(3)
        if choice < 2:
            return h.var(rng.choice("abcd"), U8)
        return h.const(U8, rng.randrange(256))
    op = rng.randrange(10)
    x, y = _gen_u8(rng, depth - 1), _gen_u8(rng, depth - 1)
    if op == 0:
        return h.u8((h.u16(x) + h.u16(y)) >> 1)
    if op == 1:
        return h.u8((h.u16(x) + h.u16(y) + 1) >> 1)
    if op == 2:
        return h.u8(h.minimum(h.u16(x) + h.u16(y), 255))
    if op == 3:
        return h.u8(h.minimum(h.u16(x) * rng.choice([2, 3, 4, 8]), 255))
    if op == 4:
        return h.maximum(x, y)
    if op == 5:
        return h.minimum(x, y)
    if op == 6:
        return h.select(E.GT(x, y), x - y, y - x)
    if op == 7:
        return x ^ y
    if op == 8:
        return h.u8((h.u16(x) + h.u16(y) + 2) >> 2)
    return F.SaturatingSub(x, y)


@settings(max_examples=60, deadline=None)
@given(seed=st.integers(0, 2**20))
def test_lift_terminates_and_preserves_semantics(seed):
    rng = random.Random(seed)
    expr = _gen_u8(rng, rng.randint(1, 3))
    lifted = lift(expr)  # must terminate (cost-decreasing TRS)
    env = {
        n: [rng.randrange(256) for _ in range(8)] for n in "abcd"
    }
    assert evaluate(lifted, env) == evaluate(expr, env)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 2**20))
def test_full_pipeline_fuzz_all_paper_targets(seed):
    rng = random.Random(seed)
    expr = _gen_u8(rng, 2)
    env = {n: [rng.randrange(256) for _ in range(8)] for n in "abcd"}
    ref = evaluate(expr, env)
    for target in (X86, ARM, HVX):
        prog = pitchfork_compile(expr, target)
        assert prog.run(env) == ref, target.name


@settings(max_examples=30, deadline=None)
@given(
    x=st.integers(min_value=-32768, max_value=32767),
    c=st.integers(min_value=0, max_value=14),
)
def test_fuzzed_q15_chains(x, c):
    """Requantization chains with arbitrary shift constants."""
    xv = h.var("x", I16)
    expr = h.i16(
        h.clamp(
            (h.i32(xv) * h.i32(xv) + (1 << max(0, c - 1))) >> c,
            -32768,
            32767,
        )
    )
    prog = pitchfork_compile(expr, ARM)
    assert prog.run({"x": [x]}) == evaluate(expr, {"x": [x]})
