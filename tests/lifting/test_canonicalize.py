"""Unit tests for canonicalization (the pre-lift simplifier)."""

from repro.ir import builders as h
from repro.ir import expr as E
from repro.ir.types import U8, U16
from repro.lifting.canonicalize import canonicalize, fold_constants

a = h.var("a", U8)
b = h.var("b", U8)


class TestConstantFolding:
    def test_fold_add(self):
        assert fold_constants(h.const(U8, 3) + 4) == h.const(U8, 7)

    def test_fold_nested(self):
        e = (h.const(U16, 3) + 4) * h.const(U16, 2)
        assert fold_constants(e) == h.const(U16, 14)

    def test_fold_cast(self):
        assert fold_constants(h.u16(h.const(U8, 200))) == h.const(U16, 200)

    def test_fold_respects_wrapping(self):
        assert fold_constants(h.const(U8, 200) + 100) == h.const(U8, 44)

    def test_vars_not_folded(self):
        assert fold_constants(a + 1) == a + 1


class TestIdentities:
    def test_add_zero(self):
        assert canonicalize(a + 0) == a

    def test_mul_one_and_zero(self):
        assert canonicalize(a * 1) == a
        assert canonicalize(a * 0) == h.const(U8, 0)

    def test_sub_zero_and_neg(self):
        assert canonicalize(a - 0) == a
        assert canonicalize(h.const(U8, 0) - a) == E.Neg(a)

    def test_shift_zero(self):
        assert canonicalize(a << 0) == a
        assert canonicalize(a >> 0) == a

    def test_min_self(self):
        assert canonicalize(h.minimum(a, a)) == a

    def test_div_pow2_to_shift(self):
        out = canonicalize(h.u16(a) // 8)
        assert out == E.Shr(h.u16(a), h.const(U16, 3))

    def test_div_non_pow2_stays(self):
        out = canonicalize(h.u16(a) // 6)
        assert isinstance(out, E.Div)

    def test_constant_commutes_right(self):
        e = E.Add(h.const(U8, 3), a)
        assert canonicalize(e) == E.Add(a, h.const(U8, 3))
        e = E.Mul(h.const(U8, 3), a)
        assert canonicalize(e) == E.Mul(a, h.const(U8, 3))

    def test_mul_by_pow2_not_strength_reduced(self):
        # crucial difference vs the LLVM mid-end (§2.2)
        out = canonicalize(h.u16(a) * 2)
        assert isinstance(out, E.Mul)

    def test_select_lt_becomes_min(self):
        e = h.select(E.LT(a, b), a, b)
        assert canonicalize(e) == E.Min(a, b)

    def test_select_gt_becomes_max(self):
        e = h.select(E.GT(a, b), a, b)
        assert canonicalize(e) == E.Max(a, b)

    def test_select_unrelated_stays(self):
        c = h.var("c", U8)
        e = h.select(E.LT(a, b), a, c)
        assert canonicalize(e) == e

    def test_widen_chain_collapses(self):
        e = E.Cast(h.U32, h.u16(a))
        assert canonicalize(e) == E.Cast(h.U32, a)

    def test_identity_cast_removed(self):
        e = E.Cast(U8, a)
        assert canonicalize(e) == a
