"""§2.4 "Verifying Hand-Written Rules": every lifting rule — hand-written
and synthesized — must pass bounded verification.

The paper reports this exercise "unearthed a handful of subtle bugs that
had escaped detection through testing and code-reviews"; keeping it in the
test suite means a broken rule can never land.
"""

import pytest

from repro.lifting import HAND_RULES, SYNTHESIZED_RULES
from repro.verify import verify_rule

ALL_RULES = HAND_RULES + SYNTHESIZED_RULES


@pytest.mark.parametrize("rule", ALL_RULES, ids=lambda r: r.name)
def test_lifting_rule_is_sound(rule):
    report = verify_rule(
        rule, max_type_combos=6, max_const_samples=4, max_points=400
    )
    assert report.ok, (
        f"{rule.name}: {report.counterexample} "
        f"(combos={report.checked_combos})"
    )


def test_rule_set_sizes_match_paper():
    # "approximately 50 hand-written rules, augmented with a further 25
    # synthesized rules" — the synthesized set here is split between
    # lifting rules and the per-target lowering rules.
    assert 45 <= len(HAND_RULES) <= 70
    assert len(SYNTHESIZED_RULES) >= 5


def test_every_rule_has_unique_name():
    names = [r.name for r in ALL_RULES]
    assert len(names) == len(set(names))


def test_synthesized_rules_are_tagged():
    for r in SYNTHESIZED_RULES:
        assert r.is_synthesized, r.name
