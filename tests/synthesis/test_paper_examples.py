"""§4's concrete examples, rediscovered live by the synthesis pipeline."""

import pytest

from repro import fpir as F
from repro.ir import builders as h
from repro.ir import expr as E
from repro.ir.types import I16, U8, U16
from repro.synthesis import (
    GeneralizationError,
    generalize_pair,
    synthesize_lift,
)

a = h.var("a", U8)
b = h.var("b", U8)


class TestSection41LiftingSynthesis:
    def test_signed_widen_shl_example(self):
        """§4.1:  i16(x_u8) << 6
        -> reinterpret(widening_shl(x_u8, u8(6)))"""
        res = synthesize_lift(h.i16(a) << 6)
        assert res is not None
        assert res.rhs == E.Reinterpret(
            I16, F.WideningShl(a, h.const(U8, 6))
        )
        assert res.rhs_cost < res.lhs_cost

    def test_saturating_narrow_discovered(self):
        w = h.var("w", U16)
        res = synthesize_lift(h.u8(h.minimum(w, 255)))
        assert res is not None and res.rhs == F.SaturatingNarrow(w)

    def test_rounding_halving_add_discovered(self):
        res = synthesize_lift(h.u8((h.u16(a) + h.u16(b) + 1) >> 1))
        assert res is not None
        assert res.rhs == F.RoundingHalvingAdd(a, b)

    def test_halving_add_discovered(self):
        res = synthesize_lift(h.u8((h.u16(a) + h.u16(b)) >> 1))
        assert res is not None and res.rhs == F.HalvingAdd(a, b)

    def test_absd_discovered(self):
        res = synthesize_lift(h.maximum(a, b) - h.minimum(a, b))
        assert res is not None and res.rhs == F.Absd(a, b)

    def test_no_result_when_nothing_cheaper(self):
        # a bare add has no cheaper FPIR equivalent
        assert synthesize_lift(a + b, max_size=3) is None

    def test_synthesis_requires_fpir_in_output(self):
        # min(a, min(a, b)) simplifies but contains no FPIR; the
        # synthesizer must not return a plain simplification
        res = synthesize_lift(h.minimum(a, h.minimum(a, b)))
        assert res is None or any(
            isinstance(n, F.FPIRInstr) for n in res.rhs.walk()
        )


class TestSection43Generalization:
    def test_full_pipeline_reproduces_paper_rule(self):
        """§4.3: the generalized rule carries the 0 < c0 < 256 predicate
        and applies polymorphically."""
        res = synthesize_lift(h.i16(a) << 6)
        rule = generalize_pair(
            res.lhs, res.rhs, name="test-rule", source="synth:add"
        )
        # polymorphic: applies at u16 -> i32 with a different constant
        y = h.var("y", U16)
        out = rule.apply(h.i32(y) << 3)
        assert out == E.Reinterpret(
            h.I32, F.WideningShl(y, h.const(U16, 3))
        )
        # range predicate: c0 = 0 was excluded by the binary search
        # for the u8 witness domain... 0 is the lower boundary; shifting
        # by 0 is valid, so it must apply:
        assert rule.apply(h.i16(a) << 0) is not None
        # but far out-of-range constants are rejected
        assert rule.apply(h.i32(y) << 300) is None

    def test_constant_relation_two_power(self):
        # mul-by-4 becomes shift-by-2: the RHS constant is log2 of the
        # LHS constant, which generalization must relate symbolically.
        lhs = h.u16(a) * 4
        res = synthesize_lift(lhs)
        assert res is not None
        rule = generalize_pair(res.lhs, res.rhs, name="t2", source="synth:t")
        out = rule.apply(h.u32(h.var("w", U16)) * 16)
        assert out is not None
        # shift amount is log2(16) = 4
        consts = [n for n in out.walk() if isinstance(n, E.Const)]
        assert any(c.value == 4 for c in consts)

    def test_generalization_verifies_or_raises(self):
        # a bogus pair must be rejected by verification
        with pytest.raises(GeneralizationError):
            generalize_pair(a + b, F.SaturatingAdd(a, b), name="bogus")

    def test_monomorphic_fallback(self):
        # types that aren't widen-related stay concrete but still verify
        w = h.var("w", U16)
        res = synthesize_lift(h.u8(h.minimum(w, 255)))
        rule = generalize_pair(res.lhs, res.rhs, name="t3")
        assert rule.apply(h.u8(h.minimum(w, 255))) is not None
