"""Tests for the corpus extractor, the synthesis driver, and §4.2
lowering-rule generation against the Rake oracle."""

import pytest

from repro import fpir as F
from repro.ir import builders as h
from repro.ir import expr as E
from repro.ir.types import U8, U16
from repro.synthesis import (
    extract_corpus,
    generate_lowering_pairs,
    synthesize_lifting_rules,
)
from repro.synthesis.corpus import canonicalize_variables
from repro.targets import ARM, HVX, X86
from repro.workloads import by_name

a = h.var("a", U8)
b = h.var("b", U8)


class TestCorpus:
    def test_canonicalize_variables(self):
        e1 = h.u16(a) + h.u16(b)
        e2 = h.u16(h.var("p", U8)) + h.u16(h.var("q", U8))
        assert canonicalize_variables(e1) == canonicalize_variables(e2)

    def test_corpus_dedup_up_to_renaming(self):
        corpus = extract_corpus([by_name("sobel3x3")], max_size=6)
        exprs = [c.expr for c in corpus]
        assert len(exprs) == len(set(exprs))
        # the Sobel half-kernel pieces appear once despite 4 occurrences
        assert len(exprs) < 12

    def test_corpus_size_cap(self):
        corpus = extract_corpus([by_name("softmax")], max_size=5)
        for entry in corpus:
            assert 3 <= entry.expr.size <= 5

    def test_provenance_recorded(self):
        corpus = extract_corpus([by_name("add")], max_size=8)
        assert corpus and all(c.source == "add" for c in corpus)


class TestDriver:
    def test_driver_produces_verified_rules(self):
        run = synthesize_lifting_rules(
            workloads=[by_name("average_pool"), by_name("camera_pipe")],
            max_lhs_size=6,
            max_candidates=30,
        )
        assert run.corpus_size > 0
        assert len(run.pairs) >= 1
        # every returned rule carries synth provenance
        for rule in run.rules:
            assert rule.is_synthesized

    def test_driver_rules_apply_to_their_source(self):
        run = synthesize_lifting_rules(
            workloads=[by_name("add")], max_lhs_size=5, max_candidates=20
        )
        # at least one rule should fire somewhere on the add benchmark
        wl = by_name("add")
        from repro.lifting.canonicalize import canonicalize

        expr = canonicalize(wl.expr)
        fired = False
        for rule in run.rules:
            for node in expr.walk():
                if rule.apply(node) is not None:
                    fired = True
        assert not run.rules or fired


class TestLoweringGeneration:
    def test_sobel_arm_discovers_umlal_pattern(self):
        """§4.2's example: x_u16 + widening_shl(y_u8, 1) -> umlal."""
        pairs = generate_lowering_pairs(
            by_name("sobel3x3"), ARM, max_candidates=24
        )
        assert pairs, "oracle found no improvements on sobel/ARM"
        best = pairs[0]
        assert any(
            isinstance(n, F.WideningShl) for n in best.lhs.walk()
        )
        # the oracle's program must use the fused multiply-accumulate
        from repro.machine.program import linearize

        mnemonics = [l.mnemonic for l in linearize(best.rhs)]
        assert "umlal" in mnemonics
        assert best.improvement > 1.0

    def test_no_x86_generation(self):
        with pytest.raises(ValueError):
            generate_lowering_pairs(by_name("sobel3x3"), X86)

    def test_hvx_finds_fused_mac(self):
        pairs = generate_lowering_pairs(
            by_name("sobel3x3"), HVX, max_candidates=24
        )
        assert pairs
        assert all(p.improvement > 1.0 for p in pairs)
        assert all(p.target == "hexagon-hvx" for p in pairs)


class TestFullLoweringLoop:
    """§4.2 + §4.3 end to end: mined pairs become usable TRS rules."""

    def test_learned_rule_recovers_fusion_in_hand_only_lowerer(self):
        from repro.analysis import BoundsAnalyzer
        from repro.lifting import Lifter
        from repro.machine.lowerer import Lowerer
        from repro.machine.simulator import cost_cycles
        from repro.synthesis import synthesize_lowering_rules

        wl = by_name("sobel3x3")
        learned = synthesize_lowering_rules(wl, ARM, max_candidates=24)
        assert learned, "no lowering rules learned from sobel/ARM"

        lifted = Lifter(use_synthesized=False).lift(
            wl.expr, BoundsAnalyzer(wl.var_bounds)
        ).expr
        base = Lowerer(ARM, use_synthesized=False)
        boosted = Lowerer(
            ARM, use_synthesized=False, extra_rules=learned
        )
        base_cost = cost_cycles(
            base.lower(lifted, BoundsAnalyzer(wl.var_bounds)), ARM
        ).total
        boosted_cost = cost_cycles(
            boosted.lower(lifted, BoundsAnalyzer(wl.var_bounds)), ARM
        ).total
        assert boosted_cost < base_cost

    def test_learned_rules_are_verified_and_tagged(self):
        from repro.synthesis import synthesize_lowering_rules
        from repro.verify import verify_rule

        rules = synthesize_lowering_rules(
            by_name("sobel3x3"), ARM, max_candidates=16
        )
        for rule in rules:
            assert rule.source == "synth:sobel3x3"
            assert verify_rule(rule, max_type_combos=4).ok

    def test_learned_rule_lowered_programs_execute(self):
        from repro.analysis import BoundsAnalyzer
        from repro.interp import evaluate
        from repro.lifting import Lifter
        from repro.machine.lowerer import Lowerer
        from repro.synthesis import synthesize_lowering_rules

        wl = by_name("sobel3x3")
        learned = synthesize_lowering_rules(wl, ARM, max_candidates=16)
        lifted = Lifter(use_synthesized=False).lift(
            wl.expr, BoundsAnalyzer(wl.var_bounds)
        ).expr
        prog = Lowerer(
            ARM, use_synthesized=False, extra_rules=learned
        ).lower(lifted, BoundsAnalyzer(wl.var_bounds))
        env = wl.random_env(lanes=16, seed=55)
        assert evaluate(prog, env) == evaluate(wl.expr, env)
