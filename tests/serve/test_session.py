"""CompilerSession contract: from_args, warm-up, the compile job kind."""

import argparse

from repro.fabric import ResultCache, TaskSpec, run_tasks
from repro.session import CompilerSession, compile_cell, compile_listing


def _args(**kw):
    ns = argparse.Namespace()
    for k, v in kw.items():
        setattr(ns, k, v)
    return ns


class TestFromArgs:
    def test_bare_args_give_inline_session(self):
        s = CompilerSession.from_args(_args())
        assert s.jobs == 1 and s.cache is None
        assert s.metrics is None and s.clock is None

    def test_cache_flag_opens_a_cache(self, tmp_path):
        s = CompilerSession.from_args(
            _args(cache=True, cache_dir=str(tmp_path))
        )
        assert isinstance(s.cache, ResultCache)
        assert s.cache.root == str(tmp_path)

    def test_no_cache_wins(self, tmp_path):
        s = CompilerSession.from_args(
            _args(cache=True, cache_dir=str(tmp_path), no_cache=True)
        )
        assert s.cache is None

    def test_report_arg_creates_the_observability_pair(self):
        s = CompilerSession.from_args(_args(report="out.json"))
        assert s.metrics is not None and s.clock is not None
        # ...and its absence costs nothing (the disabled-path contract).
        s2 = CompilerSession.from_args(_args(report=None))
        assert s2.metrics is None and s2.clock is None


class TestWarmUp:
    def test_warm_up_is_idempotent(self):
        s = CompilerSession()
        first = s.warm_up(targets=["arm-neon"])
        again = s.warm_up(targets=["arm-neon"])
        assert first["warmed"] is False and first["rules"] > 0
        assert again["warmed"] is True and again["seconds"] == 0.0

    def test_inline_session_has_no_pool(self):
        s = CompilerSession(jobs=1)
        assert s.ensure_pool() is None
        s.close()  # must be safe without a pool


class TestCompileCell:
    def test_listing_matches_the_formatter(self):
        cell = compile_cell("add", "arm-neon")
        s = CompilerSession()
        prog = s.compile("add", "arm-neon")
        assert cell["listing"] == compile_listing(prog, "add")
        assert cell["workload"] == "add"
        assert cell["target"] == "arm-neon"
        assert cell["cycles"] > 0
        assert cell["instructions"] > 0

    def test_compile_job_kind_runs_on_the_fabric(self):
        spec = TaskSpec("compile", ("add", "arm-neon"), (True, "greedy"))
        res = run_tasks([spec])[0]
        assert res.ok
        assert res.value["listing"] == compile_cell("add", "arm-neon")["listing"]

    def test_compile_job_kind_is_cacheable(self, tmp_path):
        cache = ResultCache(root=str(tmp_path))
        spec = TaskSpec("compile", ("add", "arm-neon"), (True, "greedy"))
        first = run_tasks([spec], cache=cache)[0]
        second = run_tasks([spec], cache=cache)[0]
        assert not first.cached and second.cached
        assert first.value == second.value

    def test_strategy_is_in_the_params(self, tmp_path):
        # Different lift strategies must not share cache entries.
        cache = ResultCache(root=str(tmp_path))
        greedy = TaskSpec("compile", ("add", "arm-neon"), (True, "greedy"))
        egraph = TaskSpec("compile", ("add", "arm-neon"), (True, "egraph"))
        run_tasks([greedy], cache=cache)
        res = run_tasks([egraph], cache=cache)[0]
        assert not res.cached
