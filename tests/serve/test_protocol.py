"""Wire-protocol contract: parsing, validation, op -> TaskSpec mapping."""

import json

import pytest

from repro.serve import (
    ERROR_CODES,
    FABRIC_OPS,
    INLINE_OPS,
    ProtocolError,
    encode_reply,
    error_reply,
    ok_reply,
    parse_request,
    to_task_spec,
)


def _frame(**doc) -> bytes:
    return (json.dumps(doc) + "\n").encode()


class TestParseRequest:
    def test_minimal_frame(self):
        req = parse_request(_frame(op="ping"))
        assert req.op == "ping"
        assert req.id is None
        assert req.params == {}
        assert req.deadline_s is None

    def test_full_frame(self):
        req = parse_request(_frame(
            id=7, op="compile",
            params={"workload": "add", "target": "arm-neon"},
            deadline_s=5,
        ))
        assert req.id == 7
        assert req.params["workload"] == "add"
        assert req.deadline_s == 5.0

    def test_id_is_any_scalar_echoed_verbatim(self):
        assert parse_request(_frame(op="ping", id="abc")).id == "abc"

    @pytest.mark.parametrize("line", [
        b"not json\n",
        b"[1, 2]\n",
        b'"just a string"\n',
        b"\xff\xfe\n",
    ])
    def test_malformed_frames_are_bad_request(self, line):
        with pytest.raises(ProtocolError) as exc:
            parse_request(line)
        assert exc.value.code == "bad-request"

    def test_missing_op_is_bad_request(self):
        with pytest.raises(ProtocolError, match="op"):
            parse_request(_frame(id=1))

    @pytest.mark.parametrize("deadline", [0, -1, "5", True])
    def test_bad_deadline_is_bad_request(self, deadline):
        with pytest.raises(ProtocolError, match="deadline_s"):
            parse_request(_frame(op="ping", deadline_s=deadline))

    def test_non_object_params_is_bad_request(self):
        with pytest.raises(ProtocolError, match="params"):
            parse_request(_frame(op="ping", params=[1]))


class TestToTaskSpec:
    def test_compile_maps_to_compile_kind(self):
        req = parse_request(_frame(
            op="compile",
            params={"workload": "add", "target": "arm-neon"},
        ))
        spec = to_task_spec(req)
        assert spec.kind == "compile"
        assert spec.key == ("add", "arm-neon")
        assert spec.params == (True, "greedy")

    def test_every_fabric_op_maps_to_its_kind(self):
        base = {"workload": "add", "target": "arm-neon"}
        cases = {
            "compile": base,
            "coverage": base,
            "lint": base,
            "evaluate": base,
            "verify-rule": {
                "ruleset": "lifting-hand", "rule": "lift-widening-add",
            },
        }
        for op, params in cases.items():
            spec = to_task_spec(parse_request(_frame(op=op, params=params)))
            assert spec.kind == FABRIC_OPS[op]

    def test_evaluate_defaults_mirror_the_sweep_shape(self):
        spec = to_task_spec(parse_request(_frame(
            op="evaluate",
            params={"workload": "mul", "target": "x86-avx2"},
        )))
        # (with_rake, leave_one_out, strategy, backend)
        assert spec.params == (False, False, "greedy", "closure")

    def test_verify_rule_defaults_mirror_the_cli_budget(self):
        spec = to_task_spec(parse_request(_frame(
            op="verify-rule",
            params={"ruleset": "lifting-hand", "rule": "lift-widening-add"},
        )))
        assert spec.key == ("lifting-hand", "lift-widening-add")
        assert spec.params == (0, 6, 4, 400, "closure")

    def test_unknown_workload_fails_eagerly(self):
        req = parse_request(_frame(
            op="compile", params={"workload": "nope", "target": "arm-neon"},
        ))
        with pytest.raises(ProtocolError, match="nope") as exc:
            to_task_spec(req)
        assert exc.value.code == "bad-request"

    def test_unknown_target_fails_eagerly(self):
        req = parse_request(_frame(
            op="compile", params={"workload": "add", "target": "vax-780"},
        ))
        with pytest.raises(ProtocolError, match="vax-780"):
            to_task_spec(req)

    def test_unknown_rule_fails_eagerly(self):
        req = parse_request(_frame(
            op="verify-rule",
            params={"ruleset": "lifting-hand", "rule": "no-such-rule"},
        ))
        with pytest.raises(ProtocolError, match="no-such-rule"):
            to_task_spec(req)

    def test_missing_param_names_the_param(self):
        req = parse_request(_frame(op="compile", params={"workload": "add"}))
        with pytest.raises(ProtocolError, match="'target'"):
            to_task_spec(req)

    def test_wrong_param_type_is_bad_request(self):
        req = parse_request(_frame(
            op="compile",
            params={"workload": "add", "target": "arm-neon",
                    "use_synthesized": "yes"},
        ))
        with pytest.raises(ProtocolError, match="use_synthesized"):
            to_task_spec(req)

    def test_inline_op_is_not_a_fabric_op(self):
        for op in INLINE_OPS:
            with pytest.raises(ProtocolError) as exc:
                to_task_spec(parse_request(_frame(op=op)))
            assert exc.value.code == "unknown-op"


class TestReplies:
    def test_ok_reply_shape(self):
        reply = ok_reply(3, {"x": 1}, cached=True, seconds=0.5)
        assert reply == {
            "id": 3, "ok": True, "result": {"x": 1},
            "cached": True, "seconds": 0.5,
        }

    def test_error_reply_shape_and_code_vocabulary(self):
        reply = error_reply(None, "deadline", "too slow")
        assert reply["ok"] is False
        assert reply["error"]["code"] in ERROR_CODES
        with pytest.raises(AssertionError):
            error_reply(1, "not-a-code", "boom")

    def test_encode_reply_is_one_compact_line(self):
        data = encode_reply(ok_reply(1, [1, 2]))
        assert data.endswith(b"\n")
        assert data.count(b"\n") == 1
        assert json.loads(data)["result"] == [1, 2]
