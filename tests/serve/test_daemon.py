"""Daemon contract: batching, byte-identity, deadlines, drain, /metrics.

The daemon under test runs a real asyncio event loop on a background
thread; clients talk to it over real sockets, exactly as production
does.  One warm daemon (module scope) serves most tests; lifecycle
tests that must observe a shutdown start their own.
"""

import asyncio
import json
import threading
import urllib.request

import pytest

from repro.__main__ import main
from repro.fabric import ResultCache
from repro.serve import ServeClient, ServeDaemon, ServeError
from repro.session import CompilerSession


def _start_daemon(**daemon_kwargs):
    """Run a ServeDaemon on its own thread; returns a handle dict."""
    holder = {}
    ready = threading.Event()

    async def amain():
        daemon = ServeDaemon(**daemon_kwargs)
        await daemon.start(metrics_port=0)
        holder["daemon"] = daemon
        holder["loop"] = asyncio.get_running_loop()
        ready.set()
        await daemon._stopped.wait()

    thread = threading.Thread(
        target=lambda: asyncio.run(amain()), daemon=True
    )
    thread.start()
    assert ready.wait(120), "daemon failed to start"
    holder["thread"] = thread
    return holder


def _stop_daemon(holder) -> None:
    daemon = holder["daemon"]
    if not daemon._stopped.is_set():
        asyncio.run_coroutine_threadsafe(
            daemon.shutdown(), holder["loop"]
        ).result(timeout=60)
    holder["thread"].join(timeout=60)
    assert not holder["thread"].is_alive()


@pytest.fixture(scope="module")
def served(tmp_path_factory):
    cache = ResultCache(
        root=str(tmp_path_factory.mktemp("serve-cache"))
    )
    holder = _start_daemon(
        session=CompilerSession(cache=cache),
        batch_window_s=0.02,
    )
    yield holder
    _stop_daemon(holder)


@pytest.fixture
def client(served):
    with ServeClient(port=served["daemon"].address[1]) as c:
        yield c


class TestRequestReply:
    def test_ping_round_trip(self, client):
        pong = client.ping()
        assert pong["pong"] is True
        assert pong["protocol"] == 1

    def test_compile_reply_matches_cli_bytes(self, client, capsys):
        # THE golden contract: a daemon compile reply is byte-identical
        # to the one-shot CLI output for the same request.
        result = client.compile("gaussian3x3", "arm-neon")
        assert main(["compile", "gaussian3x3", "--target", "arm-neon"]) == 0
        assert capsys.readouterr().out == result["listing"] + "\n\n"

    def test_client_cli_is_byte_identical_too(self, served, capsys):
        port = str(served["daemon"].address[1])
        assert main(["compile", "sobel3x3", "--target", "x86-avx2"]) == 0
        oneshot = capsys.readouterr().out
        assert main(["client", "--port", port,
                     "compile", "sobel3x3", "--target", "x86-avx2"]) == 0
        assert capsys.readouterr().out == oneshot

    def test_replies_match_by_id_not_position(self, client):
        # An inline ping answered instantly must not steal the reply
        # slot of a slower batched compile pipelined before it.
        replies = client.batch([
            ("compile", {"workload": "add", "target": "arm-neon"}),
            ("ping", {}),
            ("compile", {"workload": "mul", "target": "arm-neon"}),
        ])
        assert [r["ok"] for r in replies] == [True, True, True]
        assert replies[0]["result"]["workload"] == "add"
        assert replies[1]["result"]["pong"] is True
        assert replies[2]["result"]["workload"] == "mul"

    def test_warm_cache_round_trip(self, client):
        params = {"workload": "l2norm", "target": "arm-neon"}
        first = client.request("compile", dict(params))
        second = client.request("compile", dict(params))
        assert second["cached"] is True
        assert second["result"] == first["result"]

    def test_cache_stats_op(self, client):
        stats = client.cache_stats()
        assert stats["entries"] >= 1
        assert "compile" in stats["by_kind"]
        assert stats["kind_bytes"]["compile"] > 0

    def test_verify_rule_op(self, client):
        reply = client.request("verify-rule", {
            "ruleset": "lifting-hand", "rule": "lift-widening-add",
            "max_type_combos": 2, "max_const_samples": 2,
            "max_points": 50,
        })
        assert reply["ok"] is True

    def test_lint_op(self, client):
        reply = client.request("lint", {
            "workload": "add", "target": "arm-neon",
        })
        assert reply["ok"] is True


class TestBatching:
    def test_concurrent_requests_coalesce(self, served):
        daemon = served["daemon"]
        before = daemon.batches_run
        targets = ["arm-neon", "x86-avx2", "hexagon-hvx"]
        with ServeClient(port=daemon.address[1]) as c:
            replies = c.batch([
                ("compile", {"workload": "mean", "target": t})
                for t in targets * 2
            ])
        assert all(r["ok"] for r in replies)
        assert [r["result"]["target"] for r in replies] == targets * 2
        # Six pipelined requests must not take six dispatches.
        assert daemon.batches_run - before < 6
        sizes = list(
            daemon.metrics.histograms("serve_batch_size")
        )
        assert sizes and sizes[0].max >= 2


class TestErrors:
    def test_unknown_workload_is_bad_request(self, client):
        with pytest.raises(ServeError) as exc:
            client.compile("nope", "arm-neon")
        assert exc.value.code == "bad-request"

    def test_unknown_op(self, client):
        with pytest.raises(ServeError) as exc:
            client.request("frobnicate")
        assert exc.value.code == "unknown-op"

    def test_malformed_line_gets_null_id_error(self, client):
        client._file.write(b"this is not json\n")
        client._file.flush()
        reply = client.recv()
        assert reply["ok"] is False
        assert reply["id"] is None
        assert reply["error"]["code"] == "bad-request"

    def test_expired_deadline_is_refused_not_executed(self, client):
        # 1 microsecond always expires inside the 20ms batch window.
        with pytest.raises(ServeError) as exc:
            client.request(
                "compile",
                {"workload": "add", "target": "arm-neon"},
                deadline_s=1e-6,
            )
        assert exc.value.code == "deadline"

    def test_error_replies_do_not_poison_the_batch(self, client):
        replies = client.batch([
            ("compile", {"workload": "add", "target": "arm-neon"}),
            ("compile", {"workload": "nope", "target": "arm-neon"}),
            ("compile", {"workload": "mul", "target": "arm-neon"}),
        ])
        assert [r["ok"] for r in replies] == [True, False, True]
        assert replies[1]["error"]["code"] == "bad-request"


class TestMetricsEndpoint:
    def _get(self, served, path):
        host, port = served["daemon"].metrics_address
        return urllib.request.urlopen(
            f"http://{host}:{port}{path}", timeout=30
        )

    def test_metrics_scrape_is_prometheus_text(self, served, client):
        client.ping()
        resp = self._get(served, "/metrics")
        assert resp.status == 200
        assert resp.headers["Content-Type"].startswith("text/plain")
        body = resp.read().decode()
        assert "# TYPE repro_serve_requests counter" in body
        assert "# TYPE repro_serve_request_seconds summary" in body
        assert 'repro_serve_request_seconds{op="compile",quantile="0.5"}' \
            in body
        assert "# TYPE repro_serve_queue_depth gauge" in body

    def test_healthz(self, served):
        assert self._get(served, "/healthz").read() == b"ok\n"

    def test_unknown_path_is_404(self, served):
        with pytest.raises(urllib.error.HTTPError) as exc:
            self._get(served, "/nope")
        assert exc.value.code == 404


class TestLifecycle:
    def test_graceful_drain_replies_then_reports(self, tmp_path):
        # Queue several compiles and a shutdown in one burst, without
        # reading: every queued request must still get its reply (the
        # drain contract), then the daemon writes report + trace.
        report = tmp_path / "serve-report.json"
        trace = tmp_path / "serve-trace.json"
        holder = _start_daemon(
            batch_window_s=0.01,
            report_path=str(report),
            trace_path=str(trace),
        )
        daemon = holder["daemon"]
        with ServeClient(port=daemon.address[1]) as c:
            frames = [
                {"id": i, "op": "compile",
                 "params": {"workload": "add", "target": t}}
                for i, t in enumerate(
                    ["arm-neon", "x86-avx2", "hexagon-hvx"]
                )
            ] + [{"id": 99, "op": "shutdown"}]
            for frame in frames:
                c.send(frame)
            replies = {c.recv()["id"]: None for _ in frames}
        assert set(replies) == {0, 1, 2, 99}
        holder["thread"].join(timeout=60)
        assert not holder["thread"].is_alive()

        doc = json.loads(report.read_text())
        assert doc["command"] == "serve"
        assert doc["extra"]["requests_served"] >= 4
        assert doc["extra"]["batches_run"] >= 1
        chrome = json.loads(trace.read_text())
        events = (
            chrome if isinstance(chrome, list)
            else chrome.get("traceEvents", [])
        )
        assert any(
            ev.get("name") == "serve:batch" for ev in events
            if isinstance(ev, dict)
        )

    def test_draining_daemon_refuses_new_fabric_work(self, served):
        # Against the warm daemon: flip the drain flag, check the
        # structured refusal, flip it back (the fixture still needs a
        # live daemon afterwards).
        daemon = served["daemon"]
        daemon._draining = True
        try:
            with ServeClient(port=daemon.address[1]) as c:
                with pytest.raises(ServeError) as exc:
                    c.compile("add", "arm-neon")
                assert exc.value.code == "shutting-down"
                # Inline ops still answer while draining.
                assert c.ping()["draining"] is True
        finally:
            daemon._draining = False
