"""The central correctness theorem of the whole system:

    simulate(lower(lift(e)), inputs) == interpret(e, inputs)

for every workload, on every target, for both PITCHFORK and the LLVM
baseline — the "verified lowering" the paper leaves as future work (§6),
made checkable here because every target instruction has executable
semantics.
"""

import pytest

from repro.interp import evaluate
from repro.pipeline import (
    LLVMCompileError,
    llvm_compile,
    pitchfork_compile,
)
from repro.targets import ARM, HVX, X86, TargetOp, is_lowered
from repro.workloads import WORKLOADS, by_name

TARGETS = [X86, ARM, HVX]


@pytest.mark.parametrize("target", TARGETS, ids=lambda t: t.name)
@pytest.mark.parametrize("name", WORKLOADS)
class TestPitchforkEndToEnd:
    def test_lower_executes_exactly(self, name, target):
        wl = by_name(name)
        prog = pitchfork_compile(wl.expr, target, var_bounds=wl.var_bounds)
        assert is_lowered(prog.lowered)
        env = wl.random_env(lanes=24, seed=101)
        assert prog.run(env) == evaluate(wl.expr, env)

    def test_leave_one_out_still_correct(self, name, target):
        wl = by_name(name)
        prog = pitchfork_compile(
            wl.expr,
            target,
            var_bounds=wl.var_bounds,
            exclude_sources={f"synth:{name}"},
        )
        env = wl.random_env(lanes=16, seed=102)
        assert prog.run(env) == evaluate(wl.expr, env)

    def test_hand_only_still_correct(self, name, target):
        wl = by_name(name)
        prog = pitchfork_compile(
            wl.expr, target, var_bounds=wl.var_bounds, use_synthesized=False
        )
        env = wl.random_env(lanes=16, seed=103)
        assert prog.run(env) == evaluate(wl.expr, env)


@pytest.mark.parametrize("target", TARGETS, ids=lambda t: t.name)
@pytest.mark.parametrize("name", WORKLOADS)
def test_llvm_baseline_end_to_end(name, target):
    wl = by_name(name)
    try:
        prog = llvm_compile(wl.expr, target, var_bounds=wl.var_bounds)
    except LLVMCompileError:
        # §5.1: 64-bit benchmarks fail on HVX; retry with the
        # substitution, which must then succeed.
        assert target is HVX
        assert name in ("depthwise_conv", "matmul", "mul")
        prog = llvm_compile(
            wl.expr, target, var_bounds=wl.var_bounds, q31_fallback=True
        )
    assert is_lowered(prog.lowered)
    env = wl.random_env(lanes=24, seed=104)
    assert prog.run(env) == evaluate(wl.expr, env)


def test_llvm_fails_on_hvx_64bit_without_substitution():
    wl = by_name("mul")
    with pytest.raises(LLVMCompileError):
        llvm_compile(wl.expr, HVX, var_bounds=wl.var_bounds)


@pytest.mark.parametrize("target", [ARM, HVX], ids=lambda t: t.name)
@pytest.mark.parametrize("name", ["sobel3x3", "add", "camera_pipe", "mul"])
def test_rake_end_to_end(name, target):
    from repro.pipeline import rake_compile

    wl = by_name(name)
    prog = rake_compile(wl.expr, target, var_bounds=wl.var_bounds)
    env = wl.random_env(lanes=16, seed=105)
    assert prog.run(env) == evaluate(wl.expr, env)


def test_rake_rejects_x86():
    from repro.machine.rake_oracle import RakeSelector

    with pytest.raises(ValueError):
        RakeSelector(X86)


class TestInstructionSelectionQuality:
    """Calibration assertions tying codegen to Figure 3."""

    def test_sobel_kernel_arm_uses_umlal(self):
        wl = by_name("sobel3x3")
        prog = pitchfork_compile(wl.expr, ARM)
        assert "umlal" in prog.instructions

    def test_sobel_arm_uses_uabd(self):
        wl = by_name("sobel3x3")
        prog = pitchfork_compile(wl.expr, ARM)
        assert "uabd" in prog.instructions

    def test_sobel_hvx_uses_vmpa_acc_and_vsat(self):
        wl = by_name("sobel3x3")
        prog = pitchfork_compile(wl.expr, HVX)
        assert "vmpa.acc" in prog.instructions
        assert "vsat" in prog.instructions

    def test_sobel_x86_absd_uses_psubus_trick(self):
        wl = by_name("sobel3x3")
        prog = pitchfork_compile(wl.expr, X86)
        assert "vpsubus" in prog.instructions
        assert "vpor" in prog.instructions

    def test_llvm_misses_absd_on_arm(self):
        wl = by_name("sobel3x3")
        prog = llvm_compile(wl.expr, ARM)
        assert "uabd" not in prog.instructions

    def test_quantized_requant_single_instruction(self):
        wl = by_name("mul")
        assert "sqrdmulh" in pitchfork_compile(wl.expr, ARM).instructions
        assert (
            "vmpy:rnd:sat"
            in pitchfork_compile(wl.expr, HVX).instructions
        )

    def test_fully_connected_x86_uses_vpmaddwd_and_vpmulhw(self):
        wl = by_name("fully_connected")
        instrs = pitchfork_compile(
            wl.expr, X86, var_bounds=wl.var_bounds
        ).instructions
        assert "vpmaddwd" in instrs
        assert "vpmulhw" in instrs

    def test_camera_pipe_uses_rounding_average(self):
        wl = by_name("camera_pipe")
        assert "vpavg" in pitchfork_compile(wl.expr, X86).instructions
        assert "urhadd" in pitchfork_compile(wl.expr, ARM).instructions
        assert "vavg:rnd" in pitchfork_compile(wl.expr, HVX).instructions

    def test_pitchfork_never_slower_than_llvm(self):
        for name in WORKLOADS:
            wl = by_name(name)
            for target in TARGETS:
                pf = pitchfork_compile(
                    wl.expr, target, var_bounds=wl.var_bounds
                )
                try:
                    ll = llvm_compile(
                        wl.expr, target, var_bounds=wl.var_bounds
                    )
                except LLVMCompileError:
                    continue
                assert pf.cost().total <= ll.cost().total + 1e-9, (
                    name,
                    target.name,
                )
