"""Rake-oracle tests: search behaviour and the paper-shaped properties."""

import pytest

from repro.analysis import BoundsAnalyzer
from repro.ir import builders as h
from repro.lifting import Lifter
from repro.machine.rake_oracle import RAKE_SWIZZLE_DISCOUNT, RakeSelector
from repro.machine.simulator import cost_cycles
from repro.machine.lowerer import Lowerer
from repro.pipeline import pitchfork_compile, rake_compile
from repro.targets import ARM, HVX, X86
from repro.workloads import by_name


class TestSearch:
    def test_never_worse_than_greedy(self):
        """The oracle starts from the greedy completion, so it can only
        improve on PITCHFORK (under its own cost model)."""
        for name in ("sobel3x3", "add", "gaussian7x7", "camera_pipe"):
            wl = by_name(name)
            for target in (ARM, HVX):
                lifted = Lifter().lift(
                    wl.expr, BoundsAnalyzer(wl.var_bounds)
                ).expr
                selector = RakeSelector(target)
                greedy = Lowerer(target).lower(
                    lifted, BoundsAnalyzer(wl.var_bounds)
                )
                greedy_cost = cost_cycles(
                    greedy, target,
                    swizzle_discount=selector.swizzle_discount,
                ).total
                _, best = selector.best_lowering(
                    lifted, BoundsAnalyzer(wl.var_bounds)
                )
                assert best <= greedy_cost + 1e-9, (name, target.name)

    def test_explores_states(self):
        wl = by_name("sobel3x3")
        lifted = Lifter().lift(wl.expr, BoundsAnalyzer()).expr
        selector = RakeSelector(ARM)
        selector.best_lowering(lifted)
        assert selector.states_explored > 0

    def test_deterministic(self):
        wl = by_name("add")
        p1 = rake_compile(wl.expr, HVX, var_bounds=wl.var_bounds)
        p2 = rake_compile(wl.expr, HVX, var_bounds=wl.var_bounds)
        assert p1.lowered == p2.lowered

    def test_swizzle_discount_only_on_hvx(self):
        assert RakeSelector(HVX).swizzle_discount == RAKE_SWIZZLE_DISCOUNT
        assert RakeSelector(ARM).swizzle_discount == 0.0

    def test_x86_rejected(self):
        with pytest.raises(ValueError):
            RakeSelector(X86)


class TestPaperShape:
    def test_rake_leads_on_hvx_swizzle_heavy_benchmarks(self):
        """§5.1: Rake's swizzle optimization matters most on matmul-like
        kernels; the gap there must exceed sobel's."""
        gaps = {}
        for name in ("matmul", "sobel3x3"):
            wl = by_name(name)
            pf = pitchfork_compile(wl.expr, HVX, var_bounds=wl.var_bounds)
            rk = rake_compile(wl.expr, HVX, var_bounds=wl.var_bounds)
            gaps[name] = pf.cost().total / rk.cost().total
        assert gaps["matmul"] > gaps["sobel3x3"]

    def test_rake_matches_pitchfork_on_arm_sobel(self):
        """§2.2: 'PITCHFORK delivers matching runtime performance on the
        Sobel filter on ARM'."""
        wl = by_name("sobel3x3")
        pf = pitchfork_compile(wl.expr, ARM, var_bounds=wl.var_bounds)
        rk = rake_compile(wl.expr, ARM, var_bounds=wl.var_bounds)
        assert rk.cost().total == pytest.approx(pf.cost().total)

    def test_rake_compile_time_exceeds_pitchfork(self):
        import time

        wl = by_name("sobel3x3")

        def best_of(fn, n=3):
            best = float("inf")
            for _ in range(n):
                t0 = time.perf_counter()
                fn()
                best = min(best, time.perf_counter() - t0)
            return best

        pf = best_of(lambda: pitchfork_compile(
            wl.expr, ARM, var_bounds=wl.var_bounds))
        rake = best_of(lambda: rake_compile(
            wl.expr, ARM, var_bounds=wl.var_bounds))
        assert rake > pf
