"""Golden end-to-end tests: compiled kernels vs independent scalar
reference implementations, over 2-D image data, on every backend.

These are the strongest correctness tests in the repository: the
reference implementations below are written directly from the benchmark
*descriptions* (not from the IR), so they would catch a systematic error
shared by the expression builder, the interpreter, and the compilers.
"""

import math
import random

import pytest

from repro.pipeline import pitchfork_compile
from repro.targets import ALL_TARGETS
from repro.workloads import by_name

TARGETS = list(ALL_TARGETS.values())


def make_image(w, h, seed=0):
    rng = random.Random(seed)
    return [
        [
            max(
                0,
                min(
                    255,
                    int(128 + 100 * math.sin((x + seed) / 4.0)
                        * math.cos(y / 3.0) + rng.randint(-20, 20)),
                ),
            )
            for x in range(w)
        ]
        for y in range(h)
    ]


def sobel_reference(img):
    """Scalar Sobel magnitude, straight from the textbook definition."""
    h, w = len(img), len(img[0])
    out = [[0] * w for _ in range(h)]

    def px(x, y):
        return img[max(0, min(h - 1, y))][max(0, min(w - 1, x))]

    for y in range(h):
        for x in range(w):
            kx1 = px(x - 1, y - 1) + 2 * px(x, y - 1) + px(x + 1, y - 1)
            kx2 = px(x - 1, y + 1) + 2 * px(x, y + 1) + px(x + 1, y + 1)
            ky1 = px(x - 1, y - 1) + 2 * px(x - 1, y) + px(x - 1, y + 1)
            ky2 = px(x + 1, y - 1) + 2 * px(x + 1, y) + px(x + 1, y + 1)
            out[y][x] = min(255, abs(kx1 - kx2) + abs(ky1 - ky2))
    return out


def gaussian3x3_reference(img):
    h, w = len(img), len(img[0])
    out = [[0] * w for _ in range(h)]
    weights = [(dx, dy, wgt)
               for dy, row in enumerate([[1, 2, 1], [2, 4, 2], [1, 2, 1]])
               for dx, wgt in enumerate(row)]

    def px(x, y):
        return img[max(0, min(h - 1, y))][max(0, min(w - 1, x))]

    for y in range(h):
        for x in range(w):
            s = sum(wgt * px(x + dx - 1, y + dy - 1)
                    for dx, dy, wgt in weights)
            out[y][x] = (s + 8) >> 4
    return out


def average_pool_reference(img):
    h, w = len(img) // 2, len(img[0]) // 2
    return [
        [
            (img[2 * y][2 * x] + img[2 * y][2 * x + 1]
             + img[2 * y + 1][2 * x] + img[2 * y + 1][2 * x + 1] + 2) >> 2
            for x in range(w)
        ]
        for y in range(h)
    ]


def _clamped_row(img, y):
    return img[max(0, min(len(img) - 1, y))]


def _sobel_env(img, y):
    """The 12 shifted taps of the sobel3x3 workload for row y."""
    h, w = len(img), len(img[0])

    def row(dy):
        r = _clamped_row(img, y + dy)
        return {
            -1: [r[max(0, x - 1)] for x in range(w)],
            0: list(r),
            1: [r[min(w - 1, x + 1)] for x in range(w)],
        }

    above, mid, below = row(-1), row(0), row(1)
    return {
        # x-kernel rows (above / below)
        "a": above[-1], "b": above[0], "c": above[1],
        "d": below[-1], "e": below[0], "f": below[1],
        # y-kernel columns (left / right)
        "g": above[-1], "i": mid[-1], "j": below[-1],
        "k": above[1], "l": mid[1], "m": below[1],
    }


@pytest.mark.parametrize("target", TARGETS, ids=lambda t: t.name)
def test_sobel_golden_image(target):
    wl = by_name("sobel3x3")
    prog = pitchfork_compile(wl.expr, target)
    img = make_image(24, 10, seed=3)
    expected = sobel_reference(img)
    for y in range(len(img)):
        got = prog.run(_sobel_env(img, y))
        assert got == expected[y], f"row {y}"


@pytest.mark.parametrize("target", TARGETS, ids=lambda t: t.name)
def test_gaussian3x3_golden_image(target):
    wl = by_name("gaussian3x3")
    prog = pitchfork_compile(wl.expr, target)
    img = make_image(20, 8, seed=5)
    expected = gaussian3x3_reference(img)
    h, w = len(img), len(img[0])
    for y in range(h):
        rows = [_clamped_row(img, y - 1), img[y], _clamped_row(img, y + 1)]
        env = {}
        for i, r in enumerate(rows):
            env[f"t{3 * i + 0}"] = [r[max(0, x - 1)] for x in range(w)]
            env[f"t{3 * i + 1}"] = list(r)
            env[f"t{3 * i + 2}"] = [r[min(w - 1, x + 1)] for x in range(w)]
        assert prog.run(env) == expected[y], f"row {y}"


@pytest.mark.parametrize("target", TARGETS, ids=lambda t: t.name)
def test_average_pool_golden_image(target):
    wl = by_name("average_pool")
    prog = pitchfork_compile(wl.expr, target)
    img = make_image(16, 8, seed=7)
    expected = average_pool_reference(img)
    for y in range(len(expected)):
        env = {
            "a": img[2 * y][0::2],
            "b": img[2 * y][1::2],
            "c": img[2 * y + 1][0::2],
            "d": img[2 * y + 1][1::2],
        }
        assert prog.run(env) == expected[y], f"row {y}"


@pytest.mark.parametrize("target", TARGETS, ids=lambda t: t.name)
def test_q31_mul_golden(target):
    """Q31 multiply against a direct big-int reference."""
    wl = by_name("mul")
    prog = pitchfork_compile(wl.expr, target, var_bounds=wl.var_bounds)
    rng = random.Random(11)
    xs = [rng.randint(-(2**31), 2**31 - 1) for _ in range(32)]
    ys = [rng.randint(-(2**31), 2**31 - 1) for _ in range(32)]
    zps = [rng.randint(-65536, 65536) for _ in range(32)]

    def ref(x, y, zp):
        p = (x * y + (1 << 30)) >> 31
        p = max(-(2**31), min(2**31 - 1, p))
        return ((p + zp + 2**31) % 2**32) - 2**31

    got = prog.run({"x": xs, "y": ys, "zp": zps})
    assert got == [ref(x, y, z) for x, y, z in zip(xs, ys, zps)]
