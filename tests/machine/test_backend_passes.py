"""Tests for the downstream backend-pass model (the Figure 6 mechanism)."""

import time

from repro.ir import builders as h
from repro.machine.backend_passes import run_backend_passes
from repro.pipeline import llvm_compile, pitchfork_compile
from repro.targets import ARM
from repro.workloads import by_name


class TestPasses:
    def test_stats_reported(self):
        prog = pitchfork_compile(
            h.u16(h.var("a", h.U8)) + h.u16(h.var("b", h.U8)), ARM
        ).lowered
        stats = run_backend_passes(prog, rounds=2)
        assert stats["values"] >= 1
        assert stats["nodes"] == prog.size
        assert stats["spills"] == 0

    def test_value_numbering_counts_distinct(self):
        a, b = h.var("a", h.U8), h.var("b", h.U8)
        shared = h.u16(a) + h.u16(b)
        prog = pitchfork_compile(
            h.u8(h.minimum(shared + shared, 255)), ARM
        ).lowered
        stats = run_backend_passes(prog, rounds=1)
        assert stats["values"] < prog.size * 2

    def test_time_scales_with_program_size(self):
        small = pitchfork_compile(
            h.u16(h.var("a", h.U8)) + h.u16(h.var("b", h.U8)), ARM
        ).lowered
        big_wl = by_name("softmax")
        big = llvm_compile(
            big_wl.expr, ARM, var_bounds=big_wl.var_bounds
        ).lowered

        def t(prog):
            t0 = time.perf_counter()
            run_backend_passes(prog, rounds=20)
            return time.perf_counter() - t0

        assert t(big) > t(small)

    def test_pitchfork_emits_less_ir_than_llvm(self):
        """The Figure 6 mechanism: smaller lowered programs."""
        for name in ("sobel3x3", "softmax", "camera_pipe"):
            wl = by_name(name)
            pf = pitchfork_compile(wl.expr, ARM, var_bounds=wl.var_bounds)
            ll = llvm_compile(wl.expr, ARM, var_bounds=wl.var_bounds)
            assert len(pf.instructions) < len(ll.instructions), name
