"""Simulator tests: the throughput cost model and program linearization."""

import pytest

from repro import fpir as F
from repro.ir import builders as h
from repro.ir import expr as E
from repro.ir.types import U8, U16
from repro.machine.program import format_assembly, linearize
from repro.machine.simulator import cost_cycles, instruction_count
from repro.pipeline import pitchfork_compile
from repro.targets import ARM, HVX, X86, target_op
from repro.targets import arm as arm_mod

a = h.var("a", U8)
b = h.var("b", U8)


class TestCostModel:
    def test_single_u8_op_is_one_issue(self):
        prog = target_op(arm_mod.UQADD, U8, a, b)
        c = cost_cycles(prog, ARM)
        assert c.total == 1.0
        assert c.instruction_count == 1

    def test_widened_ops_halve_throughput(self):
        # A u16 op over ARM's 16-lane schedule needs 2 issues (§1:
        # "high-bit-width intermediate values halve SIMD throughput").
        wadd = target_op(arm_mod.UADDL, U16, a, b)
        generic_add = ARM.generic.map_node(
            E.Add(h.var("x", U16), h.var("y", U16))
        )
        assert cost_cycles(wadd, ARM).total == 2.0
        assert cost_cycles(generic_add, ARM).total == 2.0

    def test_narrowing_counts_at_output_width(self):
        narrow = target_op(arm_mod.UQXTN, U8, h.var("w", U16))
        assert cost_cycles(narrow, ARM).total == 1.0

    def test_constants_are_free_operands(self):
        shl = ARM.generic.map_node(E.Shl(a, h.const(U8, 3)))
        c = cost_cycles(shl, ARM)
        assert c.total == 1.0

    def test_cse_counts_shared_subtrees_once(self):
        wadd = target_op(arm_mod.UADDL, U16, a, b)
        prog = ARM.generic.map_node(E.Add(wadd, wadd))
        # uaddl (2 issues) once + add.8h (2 issues): 4 total, not 6
        assert cost_cycles(prog, ARM).total == 4.0

    def test_lanes_parameter_scales(self):
        prog = target_op(arm_mod.UQADD, U8, a, b)
        assert cost_cycles(prog, ARM, lanes=32).total == 2.0

    def test_swizzle_discount(self):
        from repro.targets.hvx import VSAT

        wl_prog = target_op(VSAT, U8, h.var("w", U16))
        base = cost_cycles(wl_prog, HVX).total
        discounted = cost_cycles(wl_prog, HVX, swizzle_discount=0.5).total
        assert discounted == pytest.approx(base * 0.5)

    def test_instruction_count(self):
        wadd = target_op(arm_mod.UADDL, U16, a, b)
        prog = ARM.generic.map_node(E.Add(wadd, wadd))
        assert instruction_count(prog) == 2


class TestLinearization:
    def test_post_order_with_value_numbering(self):
        wl = pitchfork_compile(h.u8(h.minimum(h.u16(a) + h.u16(b), 255)), ARM)
        lines = linearize(wl.lowered)
        assert len(lines) == len(wl.instructions)
        # destinations are unique virtual registers
        dsts = [l.dst for l in lines]
        assert len(dsts) == len(set(dsts))

    def test_operand_references_resolve(self):
        prog = pitchfork_compile(
            h.u16(a) + h.u16(b) * 2 + h.u16(a), ARM
        )
        asm = format_assembly(prog.lowered)
        assert "uaddl" in asm or "umlal" in asm
        # inputs appear by name
        assert "a" in asm and "b" in asm

    def test_constants_render_as_immediates(self):
        prog = pitchfork_compile(h.u16(a) << 3, ARM)
        assert "#3" in format_assembly(prog.lowered)

    def test_shared_subtree_emitted_once(self):
        shared = h.u16(a) + h.u16(b)
        expr = h.u8(h.minimum(shared + shared, 255))
        prog = pitchfork_compile(expr, ARM)
        mnemonics = prog.instructions
        assert mnemonics.count("uaddl") <= 1
