"""Machine-program lint (M-codes) + interval translation validation.

The fixture tests pin each diagnostic code on a minimal hand-built
program; the matrix tests are the acceptance criteria — every lowered
program of the workload x target suite lints clean, containment is
proved on all 48 cells, and the simulator agrees lane-exactly with the
numpy evaluation of the source expression (the differential spot check
behind "zero false positives").
"""

import pytest

from repro import fpir as F
from repro.analysis.dataflow import MachineProgram
from repro.analysis.intervals import Interval
from repro.ir import builders as h
from repro.ir import expr as E
from repro.ir.types import U8, U16
from repro.lint.machinelint import (
    MachineBoundsAnalyzer,
    lint_machine_lines,
    lint_machine_program,
    machine_check,
    machine_cell,
    run_machine_lint,
    validate_translation,
)
from repro.observe import Observation
from repro.passes import PassManager, PassVerificationError
from repro.pipeline import pitchfork_compile
from repro.targets import PAPER_TARGETS, by_name as target_by_name
from repro.targets import arm as arm_mod
from repro.targets.isa import InstrSpec, target_op
from repro.workloads import WORKLOADS, by_name

a = h.var("a", U8)
b = h.var("b", U8)


def _spec(name, semantics, cost=1.0):
    return InstrSpec(name, "fake-isa", cost, semantics)


class TestLineChecks:
    def test_m001_undefined_use(self):
        p = MachineProgram.from_lines(
            [("t0", "add", ["a", "ghost"])], inputs=["a"]
        )
        diags = lint_machine_lines(p)
        assert [d.code for d in diags] == ["M001"]
        assert "ghost" in diags[0].message

    def test_m004_dead_instruction(self):
        p = MachineProgram.from_lines(
            [
                ("t0", "add", ["a", "a"]),
                ("t1", "mul", ["a", "a"]),
            ],
            inputs=["a"],
        )
        diags = lint_machine_lines(p)
        assert [d.code for d in diags] == ["M004"]
        assert diags[0].subject == "t0 = add"
        assert diags[0].severity == "warning"

    def test_clean_lines(self):
        p = MachineProgram.from_lines(
            [
                ("t0", "add", ["a", "a"]),
                ("t1", "mul", ["t0", "a"]),
            ],
            inputs=["a"],
        )
        assert lint_machine_lines(p) == []


class TestProgramChecks:
    def test_m005_unlowered_interior_node(self):
        mixed = target_op(arm_mod.ABS, U8, E.Add(a, b))
        codes = [d.code for d in lint_machine_program(mixed)]
        assert codes == ["M005"]

    def test_m003_arity_mismatch(self):
        two = _spec("needs2", lambda x, y: E.Add(x, y))
        prog = target_op(two, U8, a)  # one operand, semantics wants two
        codes = [d.code for d in lint_machine_program(prog)]
        assert codes == ["M003"]

    def test_m006_raising_semantics(self):
        def boom(x):
            raise RuntimeError("no meaning")

        prog = target_op(_spec("boom", boom), U8, a)
        diags = lint_machine_program(prog)
        assert [d.code for d in diags] == ["M006"]
        assert "RuntimeError" in diags[0].message

    def test_m006_ill_formed_expansion(self):
        bad = _spec(
            "bad", lambda x: E.Add(x, E.Var(U16, "__wide"))
        )  # u8 + u16: L001 inside the expansion
        codes = [d.code for d in lint_machine_program(target_op(bad, U8, a))]
        assert codes == ["M006"]

    def test_m002_width_disagreement(self):
        widening = _spec("wadd", lambda x, y: F.WideningAdd(x, y))
        prog = target_op(widening, U8, a, b)  # semantics computes u16
        diags = lint_machine_program(prog)
        assert [d.code for d in diags] == ["M002"]
        assert "16-bit lanes vs 8" in diags[0].message

    def test_clean_target_op(self):
        prog = target_op(arm_mod.UQADD, U8, a, b)
        assert lint_machine_program(prog) == []

    def test_provenance_blame_in_message(self):
        obs = Observation.quiet()
        wl = by_name("l2norm")
        prog = pitchfork_compile(
            wl.expr, target_by_name("arm-neon"), var_bounds=wl.var_bounds,
            trace=obs,
        )
        # Re-root the clean program under a node with broken semantics so
        # a diagnostic fires and can carry the operand's rule lineage.
        bad = _spec("bad", lambda x: E.Add(x, E.Var(U16, "__w")))
        mixed = target_op(bad, prog.lowered.type, prog.lowered)
        diags = lint_machine_program(mixed, provenance=obs.provenance)
        blamed = [d for d in diags if d.code == "M006"]
        assert blamed and "[" in blamed[0].message  # lineage suffix


class TestMachineCheck:
    def test_noop_before_lowering(self):
        assert machine_check(E.Add(a, b)) == []

    def test_flags_mixed_tree(self):
        mixed = target_op(arm_mod.ABS, U8, E.Add(a, b))
        assert any(d.code == "M005" for d in machine_check(mixed))

    def test_verify_each_catches_partial_lowering(self):
        class LeakyLower:
            name = "leaky-lower"

            def run(self, expr, ctx):
                return target_op(arm_mod.ABS, U8, expr)

        pm = PassManager([LeakyLower()], verify_each=True)
        with pytest.raises(PassVerificationError) as err:
            pm.run(E.Add(a, b))
        assert err.value.pass_name == "leaky-lower"
        assert any(d.code == "M005" for d in err.value.diagnostics)


class TestTranslationValidation:
    def test_contained_translation(self):
        prog = target_op(arm_mod.UQADD, U8, a, b)
        check = validate_translation(F.SaturatingAdd(a, b), prog)
        assert check.contained
        assert check.diagnostics == []

    def test_m007_on_escape(self):
        shift = _spec("bump", lambda x: E.Add(x, E.Const(U8, 100)))
        lowered = target_op(shift, U8, a)
        check = validate_translation(
            a, lowered, var_bounds={"a": Interval(0, 10)}
        )
        assert not check.contained
        assert [d.code for d in check.diagnostics] == ["M007"]
        assert "escapes" in check.diagnostics[0].message

    def test_machine_bounds_use_semantics(self):
        bounds = MachineBoundsAnalyzer({"a": Interval(0, 3)}).bounds(
            target_op(
                _spec("dbl", lambda x: E.Add(x, x)), U8, a
            )
        )
        assert (bounds.lo, bounds.hi) == (0, 6)

    def test_wrap_mismatch_keeps_only_provable_values(self):
        # Semantics computes u16; the op declares a u8 result, so the
        # simulator masks+wraps.  A provably-in-range interval survives;
        # one that overflows u8 must widen to the full type range.
        widening = _spec("wadd", lambda x, y: F.WideningAdd(x, y))
        small = MachineBoundsAnalyzer(
            {"a": Interval(0, 5), "b": Interval(0, 5)}
        ).bounds(target_op(widening, U8, a, b))
        assert (small.lo, small.hi) == (0, 10)
        big = MachineBoundsAnalyzer().bounds(
            target_op(widening, U8, a, b)
        )
        assert (big.lo, big.hi) == (0, 255)


# ----------------------------------------------------------------------
# The acceptance matrix: every suite cell, every paper target
# ----------------------------------------------------------------------
@pytest.mark.parametrize("target", [t.name for t in PAPER_TARGETS])
def test_matrix_lints_clean_with_containment(target):
    for name in WORKLOADS:
        cell = machine_cell(name, target)
        assert cell["diagnostics"] == [], f"{name}@{target}"
        assert cell["containment"]["contained"], f"{name}@{target}"
        assert cell["pressure"]["max_live"] >= 1
        assert cell["instructions"] >= 1


def test_run_machine_lint_report_shape():
    report = run_machine_lint(
        workload_names=["mean", "l2norm"],
        targets=[target_by_name("arm-neon")],
    )
    assert report.workloads == ["mean", "l2norm"]
    assert set(report.cells) == {"mean@arm-neon", "l2norm@arm-neon"}
    assert report.contained_cells == 2
    assert not report.failures
    assert report.emitted_mnemonics("arm-neon")
    assert report.max_pressure()["arm-neon"]["max_live"] >= 1
    text = report.format_text()
    assert "containment 2/2" in text
    assert "0 errors" in text
    payload = report.to_dict()
    assert payload["contained_cells"] == 2
    assert payload["errors"] == 0


def test_differential_numpy_spot_check():
    """Everywhere translation validation runs, the lowered program must
    also agree lane-exactly with the source expression evaluated on the
    numpy array backend."""
    pytest.importorskip("numpy")
    from repro.interp.backend import compile_for_backend

    lanes = 8
    for name in WORKLOADS:
        wl = by_name(name)
        env = wl.random_env(lanes=lanes, seed=907)
        ref = compile_for_backend(wl.expr, "numpy")(env, lanes)
        for target in PAPER_TARGETS:
            prog = pitchfork_compile(
                wl.expr, target, var_bounds=wl.var_bounds
            )
            got = prog.run(env)
            assert got == ref, f"{name}@{target.name}"
