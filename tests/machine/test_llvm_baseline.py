"""LLVM-baseline behaviour tests, calibrated against Figure 3."""

import pytest

from repro import fpir as F
from repro.ir import builders as h
from repro.ir import expr as E
from repro.ir.types import I16, U8, U16
from repro.machine.llvm_baseline import (
    LLVMBaseline,
    expand_intrinsics,
    llvm_midend,
)
from repro.pipeline import llvm_compile, pitchfork_compile
from repro.targets import ARM, HVX, X86

a = h.var("a", U8)
b = h.var("b", U8)


class TestMidend:
    def test_strength_reduction_mul_pow2(self):
        out = llvm_midend(h.u16(a) * 2)
        assert isinstance(out, E.Shl)

    def test_non_pow2_mul_untouched(self):
        out = llvm_midend(h.u16(a) * 6)
        assert isinstance(out, E.Mul)

    def test_select_minmax_recognized(self):
        out = llvm_midend(h.select(E.LT(a, b), a, b))
        assert out == E.Min(a, b)


class TestExpansion:
    def test_fpir_fully_expanded(self):
        out = expand_intrinsics(F.Absd(a, b))
        assert not any(isinstance(n, F.FPIRInstr) for n in out.walk())

    def test_saturating_add_kept_as_intrinsic(self):
        # footnote 9: explicit saturating_add lowers via llvm.uadd.sat
        out = expand_intrinsics(F.SaturatingAdd(a, b))
        assert isinstance(out, F.SaturatingAdd)

    def test_nested_expansion(self):
        out = expand_intrinsics(F.RoundingMulShr(
            h.var("x", I16), h.var("y", I16), h.const(I16, 15)
        ))
        assert not any(isinstance(n, F.FPIRInstr) for n in out.walk())


class TestFigure3Calibration:
    """LLVM matches some patterns and misses others, per Figure 3."""

    def test_llvm_arm_matches_widening_add(self):
        # Fig 3a: LLVM does use uaddl
        prog = llvm_compile(h.u16(a) + h.u16(b), ARM)
        assert "uaddl" in prog.instructions

    def test_llvm_arm_strength_reduces_away_umlal(self):
        # Fig 3a: mul-by-2 becomes ushll; no umlal
        kernel = h.u16(a) + h.u16(b) * 2 + h.u16(h.var("c", U8))
        prog = llvm_compile(kernel, ARM)
        assert "umlal" not in prog.instructions
        assert "ushll" in prog.instructions

    def test_pitchfork_arm_gets_umlal_on_same_kernel(self):
        kernel = h.u16(a) + h.u16(b) * 2 + h.u16(h.var("c", U8))
        prog = pitchfork_compile(kernel, ARM)
        assert "umlal" in prog.instructions

    def test_llvm_misses_saturating_narrow(self):
        # Fig 3c: LLVM emits min + truncate, not uqxtn / vpackuswb / vsat
        w = h.var("w", U16)
        expr = h.u8(h.minimum(w, 255))
        for target, miss in ((ARM, "uqxtn"), (HVX, "vsat"), (X86, "vpackus")):
            instrs = llvm_compile(expr, target).instructions
            assert miss not in instrs, target.name

    def test_pitchfork_hits_saturating_narrow(self):
        w = h.var("w", U16)
        expr = h.u8(h.minimum(w, 255))
        assert "uqxtn" in pitchfork_compile(expr, ARM).instructions
        # x86/HVX need the bounds proof; full-range u16 input defeats it,
        # falling back to min+pack exactly like LLVM:
        assert "vpackus" not in pitchfork_compile(expr, X86).instructions

    def test_predicated_pack_with_bounds(self):
        # With a provable bound (the Fig 3c situation after a widening
        # sum of u8 data), PITCHFORK uses the single pack instruction.
        # (a plain saturating add would fuse further, to vpaddusb, so use
        # a weighted sum that only the pack rule can narrow)
        expr = h.u8(h.minimum(h.u16(a) * 3 + h.u16(b), 255))
        assert "vpackus" in pitchfork_compile(expr, X86).instructions

    def test_saturating_add_fuses_past_the_pack(self):
        expr = h.u8(h.minimum(h.u16(a) + h.u16(b), 255))
        assert pitchfork_compile(expr, X86).instructions == ["vpaddus"]

    def test_llvm_hvx_matches_vmpa(self):
        # Fig 3a: LLVM finds the non-accumulating vmpa on HVX
        kernel = h.u16(a) + h.u16(b) * 2 + h.u16(h.var("c", U8))
        prog = llvm_compile(kernel, HVX)
        assert "vmpa" in prog.instructions
        assert "vmpa.acc" not in prog.instructions

    def test_llvm_abs_matched(self):
        x = h.var("x", h.I8)
        expr = h.select(E.GT(x, 0), x, -x)
        assert "abs" in llvm_compile(expr, ARM).instructions

    def test_substituted_compile_tagged(self):
        from repro.workloads import by_name

        wl = by_name("mul")
        prog = llvm_compile(
            wl.expr, HVX, var_bounds=wl.var_bounds, q31_fallback=True
        )
        assert prog.compiler == "llvm+q31sub"
        assert "q31_mulr_seq" in prog.instructions
