"""Cross-backend consistency: all six backends compute identical results
for every workload — one IR, one meaning, many ISAs."""

import pytest

from repro.interp import evaluate
from repro.pipeline import pitchfork_compile
from repro.targets import ALL_TARGETS
from repro.workloads import WORKLOADS, by_name


@pytest.mark.parametrize("name", WORKLOADS)
def test_all_backends_agree(name):
    wl = by_name(name)
    env = wl.random_env(lanes=16, seed=202)
    ref = evaluate(wl.expr, env)
    outputs = {}
    for tname, target in ALL_TARGETS.items():
        prog = pitchfork_compile(wl.expr, target, var_bounds=wl.var_bounds)
        outputs[tname] = prog.run(env)
    for tname, out in outputs.items():
        assert out == ref, f"{name} differs on {tname}"


@pytest.mark.parametrize("name", ["sobel3x3", "camera_pipe", "softmax"])
def test_backends_agree_at_boundary_inputs(name):
    """Boundary-valued inputs (type extremes) across all backends."""
    wl = by_name(name)
    env = {}
    for v in wl.inputs:
        b = wl.var_bounds.get(v.name)
        lo = b.lo if b else v.type.min_value
        hi = b.hi if b else v.type.max_value
        mid = (lo + hi) // 2
        env[v.name] = [lo, hi, mid, lo, hi, mid][:6]
    ref = evaluate(wl.expr, env)
    for target in ALL_TARGETS.values():
        prog = pitchfork_compile(wl.expr, target, var_bounds=wl.var_bounds)
        assert prog.run(env) == ref, target.name
