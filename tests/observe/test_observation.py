"""End-to-end observation tests: a real compile under instrumentation."""

import pytest

from repro.observe import (
    MetricsRegistry,
    NullTracer,
    Observation,
    Tracer,
)
from repro.observe.observation import CountingMemo
from repro.pipeline import pitchfork_compile
from repro.targets import ARM
from repro.workloads import by_name


class TestCountingMemo:
    def test_counts_hits_and_misses(self):
        reg = MetricsRegistry()
        memo = CountingMemo(
            reg.counter("memo", outcome="hit"),
            reg.counter("memo", outcome="miss"),
        )
        assert memo.get("k") is None
        memo["k"] = "v"
        assert memo.get("k") == "v"
        assert memo.get("k") == "v"
        assert reg.counter_value("memo", outcome="hit") == 2
        assert reg.counter_value("memo", outcome="miss") == 1


def _compile_sobel(obs):
    wl = by_name("sobel3x3")
    return pitchfork_compile(
        wl.expr, ARM, var_bounds=wl.var_bounds, trace=obs
    )


class TestInstrumentedCompile:
    def test_spans_cover_the_pipeline(self):
        obs = Observation()
        _compile_sobel(obs)
        names = [s.name for s in obs.tracer.spans]
        assert names[0] == "compile"
        for p in ("canonicalize", "lift", "lower", "backend"):
            assert f"pass:{p}" in names
        assert all(s.closed for s in obs.tracer.spans)
        compile_span = obs.tracer.spans[0]
        assert "stats" in compile_span.args
        assert compile_span.args["target"] == "arm-neon"

    def test_rule_counters_and_events(self):
        obs = Observation()
        _compile_sobel(obs)
        fired = {
            (dict(c.labels)["rule"], dict(c.labels)["phase"]): c.value
            for c in obs.metrics.counters("rule_fired")
        }
        assert fired[("arm-uabd", "lower")] >= 1
        assert any(phase == "lift" for _, phase in fired)
        # every firing also produced an instant event
        assert len(obs.tracer.instants) == sum(fired.values())
        hits = obs.metrics.counter_value(
            "match_index", phase="lift", outcome="hit"
        )
        misses = obs.metrics.counter_value(
            "match_index", phase="lift", outcome="miss"
        )
        assert hits > 0
        # the index prunes the vast majority of (rule, node) attempts
        assert misses > hits
        assert any(
            h.count > 0 for h in obs.metrics.histograms("fixpoint_passes")
        )
        assert obs.metrics.counter_value(
            "memo", phase="lift", outcome="hit"
        ) > 0

    def test_provenance_reaches_emitted_instructions(self):
        obs = Observation()
        prog = _compile_sobel(obs)
        assert len(obs.provenance) > 0
        text = prog.explain()
        for line in text.splitlines():
            assert "; " in line
            assert "lift:" in line or "lower:" in line

    def test_explain_requires_observation(self):
        prog = _compile_sobel(None)
        assert prog.observation is None
        with pytest.raises(ValueError):
            prog.explain()

    def test_observed_result_matches_unobserved(self):
        plain = _compile_sobel(None)
        observed = _compile_sobel(Observation())
        assert observed.lowered is plain.lowered
        assert observed.assembly() == plain.assembly()


class TestQuietObservation:
    def test_quiet_skips_events_keeps_metrics(self):
        obs = Observation.quiet()
        assert isinstance(obs.tracer, NullTracer)
        assert not obs.rule_events
        _compile_sobel(obs)
        assert obs.tracer.spans == []
        assert obs.tracer.instants == []
        assert any(c.value for c in obs.metrics.counters("rule_fired"))
        assert len(obs.provenance) > 0

    def test_shared_registry_aggregates(self):
        reg = MetricsRegistry()
        _compile_sobel(Observation.quiet(metrics=reg))
        one = sum(c.value for c in reg.counters("rule_fired"))
        _compile_sobel(Observation.quiet(metrics=reg))
        two = sum(c.value for c in reg.counters("rule_fired"))
        assert two == 2 * one

    def test_rule_events_off_with_live_tracer(self):
        obs = Observation(tracer=Tracer(), rule_events=False)
        _compile_sobel(obs)
        assert obs.tracer.instants == []
        assert obs.tracer.spans  # spans still recorded
