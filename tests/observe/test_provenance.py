"""Unit tests for instruction provenance chains."""

from repro.ir import builders as h
from repro.ir import expr as E
from repro.ir.types import U8, U16
from repro.observe import Provenance, ProvenanceEntry

a = h.var("a", U8)
b = h.var("b", U8)


class TestRecord:
    def test_new_interior_nodes_are_attributed(self):
        p = Provenance()
        before = E.Add(E.Cast(U16, a), E.Cast(U16, b))
        after = E.Cast(U16, E.Add(a, b))  # pretend a rule fused the casts
        p.record("lift", "fuse", "hand", before, after)
        assert p.describe(after) == "lift:fuse"
        assert p.describe(E.Add(a, b)) == "lift:fuse"

    def test_moved_subtrees_keep_their_own_provenance(self):
        p = Provenance()
        inner = E.Add(a, b)
        p.record("lift", "r1", "hand", a, inner)
        outer = E.Min(inner, b)
        p.record("lift", "r2", "hand", inner, outer)
        # The moved operand still names r1, not r2.
        assert p.rules_for(inner) == ["r1"]
        assert p.rules_for(outer) == ["r1", "r2"]

    def test_leaves_are_never_attributed(self):
        p = Provenance()
        p.record("lift", "r", "hand", a, E.Add(a, b))
        assert a not in p
        assert b not in p

    def test_rewrite_to_existing_subtree_claims_root(self):
        p = Provenance()
        before = E.Min(E.Add(a, b), E.Add(a, b))
        after = E.Add(a, b)  # min(x, x) -> x style collapse
        p.record("lift", "dedup", "hand", before, after)
        assert p.describe(after) == "lift:dedup"


class TestChains:
    def test_parent_links_build_the_chain(self):
        p = Provenance()
        s1 = E.Add(a, b)
        p.record("lift", "r1", "hand", a, s1)
        s2 = E.Mul(s1, b)
        p.record("lower", "r2", "hand", s1, s2)
        assert p.rules_for(s2) == ["r1", "r2"]
        assert p.describe(s2) == "lift:r1 -> lower:r2"
        chain = p.chain(s2)
        assert [e.phase for e in chain] == ["lift", "lower"]
        assert chain[1].parent is chain[0]

    def test_unrecorded_node_has_empty_chain(self):
        p = Provenance()
        assert p.chain(E.Add(a, b)) == []
        assert p.describe(E.Add(a, b)) == ""
        assert p.entry(E.Add(a, b)) is None
        assert len(p) == 0

    def test_entry_chain_is_earliest_first(self):
        e1 = ProvenanceEntry("lift", "r1", "hand")
        e2 = ProvenanceEntry("lower", "r2", "hand", parent=e1)
        assert e2.chain() == [e1, e2]
        assert e2.describe() == "lift:r1 -> lower:r2"


class TestInherit:
    def test_rebuilt_node_inherits_entry(self):
        p = Provenance()
        old = E.Add(a, b)
        p.record("lift", "r", "hand", a, old)
        new = E.Add(b, a)  # same production step, rewritten operands
        p.inherit(old, new)
        assert p.describe(new) == "lift:r"

    def test_inherit_never_overwrites(self):
        p = Provenance()
        old, new = E.Add(a, b), E.Mul(a, b)
        p.record("lift", "r-old", "hand", a, old)
        p.record("lift", "r-new", "hand", b, new)
        p.inherit(old, new)
        assert p.rules_for(new) == ["r-new"]

    def test_inherit_without_entry_is_a_noop(self):
        p = Provenance()
        p.inherit(E.Add(a, b), E.Mul(a, b))
        assert len(p) == 0
