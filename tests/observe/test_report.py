"""Unit tests for the run-report subsystem (build/write/load/diff)."""

import copy
import json

import pytest

from repro.observe import (
    MetricsRegistry,
    PhaseClock,
    RunReport,
    Tracer,
    diff_reports,
    format_diff,
    load_report,
    span_summary,
)
from repro.observe.report import SCHEMA_VERSION, environment_info


def _sample_report(tmp_path, name="r.json"):
    """Build, write and re-load a small but fully populated report."""
    clock = PhaseClock()
    with clock.phase("compile"):
        pass
    with clock.phase("verify"):
        pass
    reg = MetricsRegistry()
    reg.counter("rule_fired", rule="a").inc(3)
    reg.histogram("pass_seconds", stage="lift").observe(0.25)
    tr = Tracer()
    with tr.span("sweep"):
        with tr.span("task:coverage"):
            pass
    rep = RunReport.collect(
        "coverage",
        argv=["coverage", "--jobs", "4"],
        clock=clock,
        metrics=reg,
        tracer=tr,
        extra={"dead_rules": 2},
    )
    path = tmp_path / name
    rep.write(str(path))
    return load_report(str(path))


class TestBuildWriteLoad:
    def test_round_trip(self, tmp_path):
        doc = _sample_report(tmp_path)
        assert doc["schema_version"] == SCHEMA_VERSION
        assert doc["command"] == "coverage"
        assert doc["argv"] == ["coverage", "--jobs", "4"]
        assert [p["name"] for p in doc["phases"]] == ["compile", "verify"]
        assert doc["env"]["python"] == environment_info()["python"]
        assert doc["fingerprints"]["repro_version"]
        assert "lift-only" in doc["fingerprints"]["rulebase"]
        (c,) = doc["metrics"]["counters"]
        assert c["value"] == 3
        assert doc["extra"] == {"dead_rules": 2}

    def test_load_rejects_non_reports(self, tmp_path):
        p = tmp_path / "x.json"
        p.write_text(json.dumps({"hello": 1}))
        with pytest.raises(ValueError):
            load_report(str(p))

    def test_load_rejects_unknown_schema(self, tmp_path):
        p = tmp_path / "x.json"
        p.write_text(json.dumps({"schema_version": "repro-report/999"}))
        with pytest.raises(ValueError):
            load_report(str(p))

    def test_collect_with_nothing_attached(self):
        rep = RunReport.collect("workloads", argv=[])
        doc = rep.to_dict()
        assert doc["phases"] == []
        assert doc["metrics"] == {}
        assert doc["spans"]["span_count"] == 0
        assert doc["cache"] == {}


class TestSpanSummary:
    def test_empty_inputs(self):
        assert span_summary(None)["span_count"] == 0
        assert span_summary(Tracer())["critical_path"] == []

    def test_aggregates_and_critical_path(self):
        tr = Tracer()
        with tr.span("sweep"):
            with tr.span("task"):
                with tr.span("compile"):
                    pass
            with tr.span("task"):
                pass
        s = span_summary(tr)
        assert s["span_count"] == 4
        assert s["by_name"]["task"]["count"] == 2
        # Critical path walks root -> longest child chain.
        names = [n["name"] for n in s["critical_path"]]
        assert names[0] == "sweep"
        assert "task" in names
        assert s["critical_path_us"] >= s["by_name"]["task"]["max_us"]

    def test_multi_pid_trees_are_independent(self):
        parent = Tracer()
        with parent.span("sweep"):
            pass
        worker = Tracer()
        with worker.span("task"):
            with worker.span("compile"):
                pass
        payload = worker.to_payload()
        payload["pid"] = parent.pid + 7
        parent.merge_payload(payload)
        s = span_summary(parent)
        assert set(s["pids"]) == {parent.pid, parent.pid + 7}
        # Worker roots stay roots of their own lane: "compile" must be a
        # child of "task", never of the parent's "sweep".
        names = [n["name"] for n in s["critical_path"]]
        if names[0] == "sweep":
            assert "compile" not in names


class TestDiff:
    def test_self_diff_has_no_regressions(self, tmp_path):
        doc = _sample_report(tmp_path)
        entries = diff_reports(doc, doc, threshold=0.0)
        assert entries  # phases + histogram means are comparable
        assert not any(e.regressed for e in entries)
        assert all(e.change == 0.0 for e in entries)

    def test_injected_regression_is_flagged(self, tmp_path):
        doc = _sample_report(tmp_path)
        worse = copy.deepcopy(doc)
        for p in worse["phases"]:
            p["seconds"] *= 2.0
        entries = diff_reports(doc, worse, threshold=0.5)
        flagged = [e for e in entries if e.regressed]
        assert {e.key for e in flagged} == {
            "phase:compile.seconds",
            "phase:verify.seconds",
        }
        assert all(e.change == pytest.approx(1.0) for e in flagged)

    def test_threshold_gates_the_flag(self, tmp_path):
        doc = _sample_report(tmp_path)
        worse = copy.deepcopy(doc)
        for p in worse["phases"]:
            p["seconds"] *= 1.05
        assert not any(
            e.regressed for e in diff_reports(doc, worse, threshold=0.1)
        )
        assert any(
            e.regressed for e in diff_reports(doc, worse, threshold=0.01)
        )

    def test_higher_is_better_direction(self):
        a = {"schema_version": SCHEMA_VERSION, "phases": [],
             "extra": {"geomean_speedup": {"arm-neon": 2.0}}}
        b = copy.deepcopy(a)
        b["extra"]["geomean_speedup"]["arm-neon"] = 1.0
        entries = diff_reports(a, b, threshold=0.1)
        (e,) = entries
        assert e.direction == "higher"
        assert e.regressed
        # The other way round is an improvement, not a regression.
        assert not any(e.regressed for e in diff_reports(b, a))

    def test_missing_keys_are_skipped(self):
        a = {"schema_version": SCHEMA_VERSION,
             "phases": [{"name": "x", "seconds": 1.0}]}
        b = {"schema_version": SCHEMA_VERSION, "phases": []}
        assert diff_reports(a, b) == []

    def test_format_diff_warns_on_fingerprint_mismatch(self, tmp_path):
        doc = _sample_report(tmp_path)
        other = copy.deepcopy(doc)
        other["fingerprints"]["rulebase"] = {"lift-only": "deadbeef"}
        text = format_diff(diff_reports(doc, other), doc, other)
        assert "rulebase fingerprints differ" in text

    def test_format_diff_counts_regressions(self, tmp_path):
        doc = _sample_report(tmp_path)
        worse = copy.deepcopy(doc)
        for p in worse["phases"]:
            p["seconds"] *= 10.0
        entries = diff_reports(doc, worse, threshold=0.5)
        text = format_diff(entries, doc, worse)
        assert "2 regressed" in text
        assert "REGRESSED" in text
