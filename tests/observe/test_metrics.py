"""Unit tests for the counter/histogram registry."""

import json

from repro.observe import MetricsRegistry, global_metrics


class TestCounters:
    def test_counter_identity_by_name_and_labels(self):
        reg = MetricsRegistry()
        c1 = reg.counter("rule_fired", rule="a")
        c2 = reg.counter("rule_fired", rule="a")
        c3 = reg.counter("rule_fired", rule="b")
        assert c1 is c2
        assert c1 is not c3

    def test_label_order_is_irrelevant(self):
        reg = MetricsRegistry()
        assert reg.counter("m", a=1, b=2) is reg.counter("m", b=2, a=1)

    def test_inc_and_value_lookup(self):
        reg = MetricsRegistry()
        reg.counter("hits", phase="lift").inc()
        reg.counter("hits", phase="lift").inc(3)
        assert reg.counter_value("hits", phase="lift") == 4
        assert reg.counter_value("hits", phase="lower") == 0

    def test_iteration_filters_by_name(self):
        reg = MetricsRegistry()
        reg.counter("a", x=1).inc()
        reg.counter("a", x=2).inc()
        reg.counter("b").inc()
        assert len(list(reg.counters("a"))) == 2
        assert len(list(reg.counters())) == 3


class TestHistograms:
    def test_observe_tracks_count_total_min_max(self):
        reg = MetricsRegistry()
        h = reg.histogram("passes")
        for v in (1, 5, 3):
            h.observe(v)
        assert h.count == 3
        assert h.total == 9
        assert h.min == 1
        assert h.max == 5
        assert h.mean == 3

    def test_empty_histogram_mean(self):
        reg = MetricsRegistry()
        assert reg.histogram("empty").mean == 0.0


class TestExport:
    def test_to_dict_and_json_round_trip(self):
        reg = MetricsRegistry()
        reg.counter("rule_fired", rule="r", source="hand").inc(2)
        reg.histogram("fixpoint", phase="lift").observe(4)
        data = json.loads(reg.to_json())
        assert data == reg.to_dict()
        (c,) = data["counters"]
        assert c["name"] == "rule_fired"
        assert c["labels"] == {"rule": "r", "source": "hand"}
        assert c["value"] == 2
        (h,) = data["histograms"]
        assert h["name"] == "fixpoint"
        assert h["count"] == 1

    def test_global_registry_is_a_singleton(self):
        assert global_metrics() is global_metrics()
