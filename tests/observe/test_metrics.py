"""Unit tests for the counter/histogram registry."""

import json
import random

import pytest

from repro.observe import (
    MetricsRegistry,
    QUANTILE_RELATIVE_ERROR,
    global_metrics,
)


class TestCounters:
    def test_counter_identity_by_name_and_labels(self):
        reg = MetricsRegistry()
        c1 = reg.counter("rule_fired", rule="a")
        c2 = reg.counter("rule_fired", rule="a")
        c3 = reg.counter("rule_fired", rule="b")
        assert c1 is c2
        assert c1 is not c3

    def test_label_order_is_irrelevant(self):
        reg = MetricsRegistry()
        assert reg.counter("m", a=1, b=2) is reg.counter("m", b=2, a=1)

    def test_inc_and_value_lookup(self):
        reg = MetricsRegistry()
        reg.counter("hits", phase="lift").inc()
        reg.counter("hits", phase="lift").inc(3)
        assert reg.counter_value("hits", phase="lift") == 4
        assert reg.counter_value("hits", phase="lower") == 0

    def test_iteration_filters_by_name(self):
        reg = MetricsRegistry()
        reg.counter("a", x=1).inc()
        reg.counter("a", x=2).inc()
        reg.counter("b").inc()
        assert len(list(reg.counters("a"))) == 2
        assert len(list(reg.counters())) == 3


class TestHistograms:
    def test_observe_tracks_count_total_min_max(self):
        reg = MetricsRegistry()
        h = reg.histogram("passes")
        for v in (1, 5, 3):
            h.observe(v)
        assert h.count == 3
        assert h.total == 9
        assert h.min == 1
        assert h.max == 5
        assert h.mean == 3

    def test_empty_histogram_mean(self):
        reg = MetricsRegistry()
        assert reg.histogram("empty").mean == 0.0

    def test_empty_histogram_quantile_is_none(self):
        reg = MetricsRegistry()
        assert reg.histogram("empty").quantile(0.5) is None

    def test_quantile_fraction_out_of_range(self):
        reg = MetricsRegistry()
        h = reg.histogram("h")
        h.observe(1.0)
        with pytest.raises(ValueError):
            h.quantile(1.5)
        with pytest.raises(ValueError):
            h.quantile(-0.1)

    def test_single_sample_quantiles_are_exact(self):
        reg = MetricsRegistry()
        h = reg.histogram("h")
        h.observe(42.0)
        for q in (0.0, 0.5, 1.0):
            assert h.quantile(q) == 42.0

    def test_quantile_relative_error_bound(self):
        """Random workloads: every estimate within the documented bound."""
        rng = random.Random(7)
        for scale in (1e-4, 1.0, 1e5):
            reg = MetricsRegistry()
            h = reg.histogram("h")
            samples = [rng.expovariate(1.0) * scale for _ in range(2000)]
            for v in samples:
                h.observe(v)
            samples.sort()
            for q in (0.01, 0.1, 0.5, 0.9, 0.99):
                # The sketch selects the order statistic of rank
                # floor(q * (n - 1)) — compare against that sample.
                true = samples[int(q * (len(samples) - 1))]
                est = h.quantile(q)
                assert abs(est - true) <= (
                    QUANTILE_RELATIVE_ERROR * true + 1e-12
                ), (scale, q, true, est)

    def test_quantile_with_negative_and_zero_samples(self):
        reg = MetricsRegistry()
        h = reg.histogram("h")
        for v in (-8.0, -2.0, 0.0, 2.0, 8.0):
            h.observe(v)
        assert h.quantile(0.0) == -8.0
        assert h.quantile(1.0) == 8.0
        assert h.quantile(0.5) == 0.0
        lo = h.quantile(0.25)
        assert lo < 0 and abs(lo - (-2.0)) <= 2.0 * QUANTILE_RELATIVE_ERROR


class TestExport:
    def test_to_dict_and_json_round_trip(self):
        reg = MetricsRegistry()
        reg.counter("rule_fired", rule="r", source="hand").inc(2)
        reg.histogram("fixpoint", phase="lift").observe(4)
        data = json.loads(reg.to_json())
        assert data == reg.to_dict()
        (c,) = data["counters"]
        assert c["name"] == "rule_fired"
        assert c["labels"] == {"rule": "r", "source": "hand"}
        assert c["value"] == 2
        (h,) = data["histograms"]
        assert h["name"] == "fixpoint"
        assert h["count"] == 1

    def test_global_registry_is_a_singleton(self):
        assert global_metrics() is global_metrics()


class TestMergeSnapshot:
    def test_counters_add(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("n", k="x").inc(2)
        b.counter("n", k="x").inc(3)
        b.counter("n", k="y").inc(1)
        a.merge_snapshot(b.to_dict())
        assert a.counter_value("n", k="x") == 5
        assert a.counter_value("n", k="y") == 1

    def test_empty_snapshot_is_a_noop(self):
        a = MetricsRegistry()
        a.counter("n").inc()
        before = a.to_dict()
        a.merge_snapshot(MetricsRegistry().to_dict())
        a.merge_snapshot({})
        assert a.to_dict() == before

    def test_sharded_merge_equals_combined_stream(self):
        """K per-worker sketches merged == one sketch over everything."""
        rng = random.Random(3)
        samples = [rng.lognormvariate(0.0, 2.0) for _ in range(3000)]
        combined = MetricsRegistry()
        hc = combined.histogram("t", phase="lift")
        shards = [MetricsRegistry() for _ in range(4)]
        for i, v in enumerate(samples):
            hc.observe(v)
            shards[i % 4].histogram("t", phase="lift").observe(v)
        merged = MetricsRegistry()
        for shard in shards:
            merged.merge_snapshot(shard.to_dict())
        hm = merged.histogram("t", phase="lift")
        assert hm.count == hc.count
        assert hm.buckets == hc.buckets
        assert hm.min == hc.min and hm.max == hc.max
        for q in (0.1, 0.5, 0.9, 0.99):
            assert hm.quantile(q) == hc.quantile(q)
        # Totals only agree to float addition order.
        assert hm.total == pytest.approx(hc.total)

    def test_merge_json_round_tripped_snapshot(self):
        """Snapshots travel through JSON; merging the decoded dict must
        behave identically (bucket keys arrive as strings)."""
        a, b = MetricsRegistry(), MetricsRegistry()
        for v in (0.5, 2.0, -3.0, 0.0):
            b.histogram("h").observe(v)
        a.merge_snapshot(json.loads(b.to_json()))
        ha = a.histogram("h")
        hb = b.histogram("h")
        assert ha.buckets == hb.buckets
        assert ha.neg_buckets == hb.neg_buckets
        assert ha.zeros == hb.zeros

    def test_legacy_snapshot_without_buckets_still_merges(self):
        """Pre-sketch snapshots (summary stats only) must not crash and
        must keep exact count/total/min/max."""
        a = MetricsRegistry()
        legacy = {
            "counters": [],
            "histograms": [
                {
                    "name": "h",
                    "labels": {},
                    "count": 3,
                    "total": 6.0,
                    "min": 1.0,
                    "max": 3.0,
                    "mean": 2.0,
                }
            ],
        }
        a.merge_snapshot(legacy)
        h = a.histogram("h")
        assert h.count == 3 and h.total == 6.0
        # Quantiles degrade to the clamped mean, never crash.
        assert h.quantile(0.5) == 2.0

    def test_label_value_str_coercion_collision(self):
        """``labels={"n": 1}`` and ``{"n": "1"}`` are the SAME instrument
        — documented behaviour so snapshots survive JSON transport."""
        reg = MetricsRegistry()
        reg.counter("c", n=1).inc()
        reg.counter("c", n="1").inc()
        assert reg.counter_value("c", n=1) == 2
        assert len(list(reg.counters("c"))) == 1


class TestPrometheus:
    def test_counter_exposition(self):
        reg = MetricsRegistry()
        reg.counter("rule_fired", rule="a-b", source="hand").inc(4)
        text = reg.to_prometheus()
        assert "# TYPE repro_rule_fired counter" in text
        assert 'repro_rule_fired{rule="a-b",source="hand"} 4' in text
        assert text.endswith("\n")

    def test_histogram_summary_exposition(self):
        reg = MetricsRegistry()
        h = reg.histogram("pass_seconds", stage="lift")
        for v in (1.0, 2.0, 3.0, 4.0):
            h.observe(v)
        text = reg.to_prometheus()
        assert "# TYPE repro_pass_seconds summary" in text
        assert 'quantile="0.5"' in text
        assert 'repro_pass_seconds_sum{stage="lift"} 10' in text
        assert 'repro_pass_seconds_count{stage="lift"} 4' in text

    def test_name_sanitization_and_label_escaping(self):
        reg = MetricsRegistry()
        reg.counter("weird-name.x", label='va"l').inc()
        text = reg.to_prometheus(prefix="p_")
        assert "# TYPE p_weird_name_x counter" in text
        assert 'label="va\\"l"' in text


class TestGauges:
    def test_set_inc_dec(self):
        reg = MetricsRegistry()
        g = reg.gauge("queue_depth")
        g.set(5)
        assert reg.gauge_value("queue_depth") == 5.0
        g.inc()
        g.inc(2)
        g.dec(3)
        assert g.value == 5.0
        g.set(0)
        assert reg.gauge_value("queue_depth") == 0.0

    def test_gauge_identity_by_name_and_labels(self):
        reg = MetricsRegistry()
        assert reg.gauge("conns", port=1) is reg.gauge("conns", port=1)
        assert reg.gauge("conns", port=1) is not reg.gauge("conns", port=2)

    def test_untouched_gauge_reads_zero(self):
        assert MetricsRegistry().gauge_value("never") == 0.0

    def test_gauges_can_go_negative(self):
        reg = MetricsRegistry()
        reg.gauge("delta").dec(2.5)
        assert reg.gauge_value("delta") == -2.5

    def test_snapshot_omits_the_key_when_unused(self):
        # The checked-in report baseline predates gauges; an idle
        # registry must keep producing the historical snapshot shape.
        reg = MetricsRegistry()
        reg.counter("c").inc()
        assert "gauges" not in reg.to_dict()
        reg.gauge("g").set(1)
        assert reg.to_dict()["gauges"] == [
            {"name": "g", "labels": {}, "value": 1.0}
        ]

    def test_merge_snapshot_sums_levels(self):
        # Fleet-wide level = sum of per-process levels (each worker
        # reports its own queue depth; merged, that is the total).
        a, b = MetricsRegistry(), MetricsRegistry()
        a.gauge("depth", lane="q").set(3)
        b.gauge("depth", lane="q").set(4)
        merged = MetricsRegistry()
        merged.merge_snapshot(a.to_dict())
        merged.merge_snapshot(b.to_dict())
        assert merged.gauge_value("depth", lane="q") == 7.0

    def test_prometheus_exposition(self):
        reg = MetricsRegistry()
        reg.gauge("queue_depth", lane="fabric").set(3)
        text = reg.to_prometheus()
        assert "# TYPE repro_queue_depth gauge" in text
        assert 'repro_queue_depth{lane="fabric"} 3' in text

    def test_len_includes_gauges(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.gauge("g").set(1)
        reg.histogram("h").observe(1)
        assert len(reg) == 3
