"""Unit tests for the span tracer and its Chrome-trace export."""

import json

from repro.observe import NullTracer, Tracer


class TestTracer:
    def test_spans_nest_and_close(self):
        tr = Tracer()
        with tr.span("outer") as outer:
            with tr.span("inner", detail=1) as inner:
                assert inner.depth == 1
            assert inner.closed
            assert not outer.closed
        assert outer.closed
        assert outer.depth == 0
        assert [s.name for s in tr.spans] == ["outer", "inner"]
        assert outer.duration_us >= inner.duration_us

    def test_span_survives_exceptions(self):
        tr = Tracer()
        try:
            with tr.span("boom"):
                raise RuntimeError("x")
        except RuntimeError:
            pass
        assert tr.spans[0].closed
        assert tr._stack == []

    def test_instants_record_depth_and_args(self):
        tr = Tracer()
        with tr.span("s"):
            tr.instant("hit", rule="r1")
        (ev,) = tr.instants
        assert ev.name == "hit"
        assert ev.depth == 1
        assert ev.args == {"rule": "r1"}

    def test_chrome_trace_format(self):
        tr = Tracer()
        with tr.span("compile", target="arm"):
            tr.instant("rule:x")
        all_events = tr.to_chrome_trace()
        # Process-name metadata leads, then the timed events.
        meta = [e for e in all_events if e["ph"] == "M"]
        assert meta and meta[0]["name"] == "process_name"
        assert meta[0]["args"]["name"] == "main"
        events = [e for e in all_events if e["ph"] in ("X", "i")]
        assert len(events) == 2
        for ev in events:
            assert {"name", "ph", "ts"} <= set(ev)
        span_ev = next(e for e in events if e["ph"] == "X")
        assert span_ev["name"] == "compile"
        assert span_ev["args"] == {"target": "arm"}
        assert span_ev["dur"] >= 0
        assert span_ev["pid"] == tr.pid
        inst_ev = next(e for e in events if e["ph"] == "i")
        assert inst_ev["s"] == "t"
        # Timed events come out time-ordered.
        assert [e["ts"] for e in events] == sorted(e["ts"] for e in events)

    def test_write_chrome_trace_is_loadable_json(self, tmp_path):
        tr = Tracer()
        with tr.span("a"):
            pass
        path = tmp_path / "trace.json"
        tr.write_chrome_trace(str(path))
        events = json.loads(path.read_text())
        assert isinstance(events, list)
        spans = [e for e in events if e["ph"] == "X"]
        assert spans[0]["name"] == "a"


class TestCrossProcess:
    def test_payload_round_trip_preserves_structure(self):
        tr = Tracer()
        with tr.span("task", key="a/b"):
            with tr.span("compile"):
                tr.instant("rule:x", phase="lift")
        payload = tr.to_payload()
        # The payload is plain JSON data.
        json.dumps(payload)
        assert payload["pid"] == tr.pid
        assert [s["name"] for s in payload["spans"]] == ["task", "compile"]
        assert payload["spans"][1]["depth"] == 1
        assert payload["instants"][0]["args"] == {"phase": "lift"}

    def test_merge_reanchors_onto_parent_timeline(self):
        parent = Tracer()
        worker = Tracer()
        with worker.span("task"):
            pass
        payload = worker.to_payload()
        payload["pid"] = 4242  # simulate another process
        parent.merge_payload(payload)
        (sp,) = parent.spans
        assert sp.name == "task"
        assert sp.pid == 4242
        assert sp.depth == 0
        # The worker started after the parent, so its re-anchored start
        # must be positive on the parent's timeline.
        assert sp.start_us >= 0.0

    def test_merge_preserves_nesting_and_lanes_in_chrome_export(self):
        parent = Tracer()
        with parent.span("sweep"):
            pass
        worker = Tracer()
        with worker.span("task"):
            with worker.span("compile"):
                pass
        payload = worker.to_payload()
        payload["pid"] = parent.pid + 1
        parent.merge_payload(payload)
        events = parent.to_chrome_trace()
        meta = {e["pid"]: e["args"]["name"]
                for e in events if e["ph"] == "M"}
        assert meta[parent.pid] == "main"
        assert meta[parent.pid + 1] == f"worker-{parent.pid + 1}"
        spans = [e for e in events if e["ph"] == "X"]
        assert {e["pid"] for e in spans} == {parent.pid, parent.pid + 1}
        # Worker nesting survives: the inner span sits inside the outer.
        task = next(e for e in spans if e["name"] == "task")
        comp = next(e for e in spans if e["name"] == "compile")
        assert task["ts"] <= comp["ts"]
        assert comp["ts"] + comp["dur"] <= task["ts"] + task["dur"] + 1e-6

    def test_null_tracer_discards_payloads(self):
        null = NullTracer()
        worker = Tracer()
        with worker.span("task"):
            pass
        null.merge_payload(worker.to_payload())
        assert null.spans == []


class TestNullTracer:
    def test_records_nothing(self):
        tr = NullTracer()
        with tr.span("a", x=1) as sp:
            tr.instant("b")
            with tr.span("c"):
                pass
        assert tr.spans == []
        assert tr.instants == []
        assert tr.to_chrome_trace() == []
        assert sp.name == "<null>"

    def test_disabled_flag(self):
        assert Tracer.enabled is True
        assert NullTracer.enabled is False
