"""Unit tests for the span tracer and its Chrome-trace export."""

import json

from repro.observe import NullTracer, Tracer


class TestTracer:
    def test_spans_nest_and_close(self):
        tr = Tracer()
        with tr.span("outer") as outer:
            with tr.span("inner", detail=1) as inner:
                assert inner.depth == 1
            assert inner.closed
            assert not outer.closed
        assert outer.closed
        assert outer.depth == 0
        assert [s.name for s in tr.spans] == ["outer", "inner"]
        assert outer.duration_us >= inner.duration_us

    def test_span_survives_exceptions(self):
        tr = Tracer()
        try:
            with tr.span("boom"):
                raise RuntimeError("x")
        except RuntimeError:
            pass
        assert tr.spans[0].closed
        assert tr._stack == []

    def test_instants_record_depth_and_args(self):
        tr = Tracer()
        with tr.span("s"):
            tr.instant("hit", rule="r1")
        (ev,) = tr.instants
        assert ev.name == "hit"
        assert ev.depth == 1
        assert ev.args == {"rule": "r1"}

    def test_chrome_trace_format(self):
        tr = Tracer()
        with tr.span("compile", target="arm"):
            tr.instant("rule:x")
        events = tr.to_chrome_trace()
        assert len(events) == 2
        for ev in events:
            assert {"name", "ph", "ts"} <= set(ev)
        span_ev = next(e for e in events if e["ph"] == "X")
        assert span_ev["name"] == "compile"
        assert span_ev["args"] == {"target": "arm"}
        assert span_ev["dur"] >= 0
        inst_ev = next(e for e in events if e["ph"] == "i")
        assert inst_ev["s"] == "t"
        # Events come out time-ordered.
        assert [e["ts"] for e in events] == sorted(e["ts"] for e in events)

    def test_write_chrome_trace_is_loadable_json(self, tmp_path):
        tr = Tracer()
        with tr.span("a"):
            pass
        path = tmp_path / "trace.json"
        tr.write_chrome_trace(str(path))
        events = json.loads(path.read_text())
        assert isinstance(events, list)
        assert events[0]["name"] == "a"


class TestNullTracer:
    def test_records_nothing(self):
        tr = NullTracer()
        with tr.span("a", x=1) as sp:
            tr.instant("b")
            with tr.span("c"):
                pass
        assert tr.spans == []
        assert tr.instants == []
        assert tr.to_chrome_trace() == []
        assert sp.name == "<null>"

    def test_disabled_flag(self):
        assert Tracer.enabled is True
        assert NullTracer.enabled is False
