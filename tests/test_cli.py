"""CLI tests (`python -m repro`)."""

import json

import pytest

from repro.__main__ import main


class TestCompile:
    def test_compile_single_target(self, capsys):
        assert main(["compile", "sobel3x3", "--target", "arm-neon"]) == 0
        out = capsys.readouterr().out
        assert "umlal" in out and "uabd" in out

    def test_compile_with_comparison(self, capsys):
        assert main(
            ["compile", "add", "--target", "hexagon-hvx", "--compare"]
        ) == 0
        out = capsys.readouterr().out
        assert "PITCHFORK" in out and "LLVM" in out and "faster" in out

    def test_compile_show_fpir(self, capsys):
        assert main(
            ["compile", "mul", "--target", "arm-neon", "--show-fpir"]
        ) == 0
        assert "rounding_mul_shr" in capsys.readouterr().out

    def test_compile_every_backend(self, capsys):
        assert main(["compile", "max_pool", "--target", "every"]) == 0
        out = capsys.readouterr().out
        for name in ("x86-avx2", "arm-neon", "hexagon-hvx",
                     "wasm-simd128", "riscv-rvv"):
            assert name in out

    def test_q31_substitution_note(self, capsys):
        assert main(
            ["compile", "mul", "--target", "hexagon-hvx", "--compare"]
        ) == 0
        assert "q31 substitution" in capsys.readouterr().out

    def test_compile_stats_breakdown(self, capsys):
        assert main(
            ["compile", "sobel3x3", "--target", "arm-neon", "--stats"]
        ) == 0
        out = capsys.readouterr().out
        assert "per-pass breakdown" in out
        for name in ("canonicalize", "lift", "lower", "backend", "total"):
            assert name in out
        assert "rewrites" in out

    def test_compile_stats_with_compare_notes_missing_stats(self, capsys):
        assert main(
            ["compile", "add", "--target", "arm-neon", "--compare",
             "--rake", "--stats"]
        ) == 0
        out = capsys.readouterr().out
        assert "per-pass breakdown (pitchfork)" in out
        assert "(no per-pass stats for llvm)" in out
        assert "(no per-pass stats for rake)" in out

    def test_compile_trace_writes_chrome_json(self, tmp_path, capsys):
        trace = tmp_path / "t.json"
        assert main(
            ["compile", "sobel3x3", "--target", "arm-neon",
             "--trace", str(trace)]
        ) == 0
        assert "wrote Chrome trace" in capsys.readouterr().out
        events = json.loads(trace.read_text())
        assert isinstance(events, list) and events
        for ev in events:
            assert {"name", "ph", "ts"} <= set(ev)
        names = {e["name"] for e in events if e["ph"] == "X"}
        assert {"compile", "pass:lift", "pass:lower"} <= names

    def test_compile_explain_annotates_every_line(self, capsys):
        assert main(
            ["compile", "sobel3x3", "--target", "arm-neon", "--explain"]
        ) == 0
        out = capsys.readouterr().out
        asm = [ln for ln in out.splitlines() if " ; " in ln]
        assert asm
        for line in asm:
            assert "lift:" in line or "lower:" in line

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            main(["compile", "not_a_benchmark"])


class TestOtherCommands:
    def test_workloads(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert out.count("\n") == 16

    def test_rules_summary(self, capsys):
        assert main(["rules"]) == 0
        out = capsys.readouterr().out
        assert "lifting (hand)" in out and "total:" in out

    def test_rules_verbose(self, capsys):
        assert main(["rules", "--verbose"]) == 0
        assert "lift-widening-add" in capsys.readouterr().out

    def test_synthesize(self, capsys):
        assert main(["synthesize", "add", "--max-candidates", "10"]) == 0
        assert "corpus:" in capsys.readouterr().out

    def test_synthesize_rejects_unknown_benchmark(self, capsys):
        assert main(["synthesize", "add", "not_a_benchmark"]) == 2
        err = capsys.readouterr().err
        assert "unknown benchmark: not_a_benchmark" in err
        assert "valid workloads:" in err
        assert "sobel3x3" in err

    def test_evaluate_fig3(self, capsys):
        assert main(["evaluate", "fig3"]) == 0
        out = capsys.readouterr().out
        assert "Figure 3(a)" in out or "(a)" in out


class TestCoverage:
    def test_coverage_report_and_exit_code(self, capsys):
        # The single-target sweep leaves hand-written rules dead, so the
        # bare command exits non-zero while still printing the report.
        rc = main(["coverage", "--target", "arm-neon"])
        out = capsys.readouterr().out
        assert "rule coverage over 16 workloads x 1 targets" in out
        assert "-- lifting:" in out
        assert rc == (1 if "FAIL" in out else 0)

    def test_coverage_json_export(self, tmp_path, capsys):
        report = tmp_path / "coverage.json"
        main(["coverage", "--target", "arm-neon", "--json", str(report)])
        data = json.loads(report.read_text())
        assert data["targets"] == ["arm-neon"]
        assert any(r["fires"] for r in data["rules"])

    def test_coverage_baseline_ratchet(self, tmp_path, capsys):
        # A baseline listing every currently-dead hand rule makes the
        # ratchet pass; an empty baseline fails on the same sweep.
        rc = main(["coverage", "--target", "arm-neon"])
        first = capsys.readouterr().out
        baseline = tmp_path / "baseline.txt"
        dead = [
            ln.split()[0]
            for ln in first.splitlines()
            if "HAND-WRITTEN" in ln
        ]
        baseline.write_text("# known gaps\n" + "\n".join(dead) + "\n")
        assert main(
            ["coverage", "--target", "arm-neon",
             "--baseline", str(baseline)]
        ) == 0
        capsys.readouterr()
        empty = tmp_path / "empty.txt"
        empty.write_text("")
        rc2 = main(
            ["coverage", "--target", "arm-neon", "--baseline", str(empty)]
        )
        assert rc2 == rc
        if rc:
            assert "newly dead" in capsys.readouterr().out


class TestFabricOptions:
    """--jobs/--cache plumbing and the cache subcommand."""

    def test_coverage_jobs_output_is_identical(self, capsys):
        main(["coverage", "--target", "arm-neon"])
        serial = capsys.readouterr().out
        main(["coverage", "--target", "arm-neon", "--jobs", "2"])
        assert capsys.readouterr().out == serial

    def test_coverage_cache_dir_warm_run(self, tmp_path, capsys):
        root = str(tmp_path / "cache")
        main(["coverage", "--target", "arm-neon", "--cache-dir", root])
        first = capsys.readouterr().out
        main(["coverage", "--target", "arm-neon", "--cache-dir", root])
        assert capsys.readouterr().out == first
        import os

        assert os.path.isdir(root)

    def test_no_cache_wins(self, tmp_path, capsys):
        root = str(tmp_path / "cache")
        main(["coverage", "--target", "arm-neon", "--cache-dir", root,
              "--no-cache"])
        capsys.readouterr()
        import os

        assert not os.path.exists(root)

    def test_cache_stats_and_clear(self, tmp_path, capsys):
        root = str(tmp_path / "cache")
        main(["coverage", "--target", "arm-neon", "--cache-dir", root])
        capsys.readouterr()
        assert main(["cache", "stats", "--cache-dir", root]) == 0
        out = capsys.readouterr().out
        assert "entries: 16" in out and "coverage" in out
        assert main(["cache", "clear", "--cache-dir", root]) == 0
        assert "removed 16 entries" in capsys.readouterr().out
        assert main(["cache", "stats", "--cache-dir", root]) == 0
        assert "entries: 0" in capsys.readouterr().out

    def test_cache_fingerprint_is_stable(self, capsys):
        assert main(["cache", "fingerprint"]) == 0
        first = capsys.readouterr().out.strip()
        assert main(["cache", "fingerprint"]) == 0
        assert capsys.readouterr().out.strip() == first
        assert len(first) == 64 and int(first, 16) >= 0

    def test_rules_verify_jobs_output_is_identical(self, capsys):
        main(["rules", "--verify"])
        serial = capsys.readouterr().out
        main(["rules", "--verify", "--jobs", "2"])
        assert capsys.readouterr().out == serial


class TestRunReports:
    """--report artifacts and the report show/diff subcommands."""

    def _emit(self, tmp_path, name="r.json"):
        path = tmp_path / name
        assert main(["compile", "add", "--target", "x86-avx2",
                     "--report", str(path)]) == 0
        return path

    def test_compile_report_artifact(self, tmp_path, capsys):
        path = self._emit(tmp_path)
        assert f"wrote run report to {path}" in capsys.readouterr().out
        doc = json.loads(path.read_text())
        assert doc["schema_version"] == "repro-report/1"
        assert doc["command"] == "compile"
        assert [p["name"] for p in doc["phases"]] == ["compile:x86-avx2"]
        assert doc["metrics"]["counters"]  # rule fires were recorded
        assert doc["spans"]["span_count"] > 0
        assert doc["spans"]["critical_path"][0]["name"] == "compile"

    def test_compile_output_unchanged_by_report(self, tmp_path, capsys):
        assert main(["compile", "add", "--target", "x86-avx2"]) == 0
        plain = capsys.readouterr().out
        self._emit(tmp_path)
        with_report = capsys.readouterr().out
        assert with_report.startswith(plain)

    def test_coverage_report_and_trace(self, tmp_path, capsys):
        report = tmp_path / "cov.json"
        trace = tmp_path / "trace.json"
        main(["coverage", "--target", "x86-avx2", "--jobs", "2",
              "--report", str(report), "--trace", str(trace)])
        out = capsys.readouterr().out
        assert "process lanes" in out
        doc = json.loads(report.read_text())
        assert doc["command"] == "coverage"
        assert doc["spans"]["span_count"] > 0
        assert len(doc["spans"]["pids"]) >= 2  # merged worker lanes
        events = json.loads(trace.read_text())
        assert any(e["ph"] == "M" for e in events)
        assert any(e["name"] == "task:coverage" for e in events)

    def test_report_show(self, tmp_path, capsys):
        path = self._emit(tmp_path)
        capsys.readouterr()
        assert main(["report", "show", str(path)]) == 0
        out = capsys.readouterr().out
        assert "command: compile" in out
        assert "phase compile:x86-avx2" in out

    def test_report_self_diff_exits_zero(self, tmp_path, capsys):
        path = self._emit(tmp_path)
        capsys.readouterr()
        assert main(["report", "diff", str(path), str(path)]) == 0
        assert "0 regressed" in capsys.readouterr().out

    def test_report_diff_flags_regression(self, tmp_path, capsys):
        path = self._emit(tmp_path)
        doc = json.loads(path.read_text())
        for p in doc["phases"]:
            p["seconds"] *= 3.0
        worse = tmp_path / "worse.json"
        worse.write_text(json.dumps(doc))
        capsys.readouterr()
        assert main(["report", "diff", str(path), str(worse),
                     "--threshold", "0.5"]) == 1
        assert "REGRESSED" in capsys.readouterr().out
        # The same pair under a huge threshold passes.
        assert main(["report", "diff", str(path), str(worse),
                     "--threshold", "5.0"]) == 0

    def test_report_diff_rejects_non_reports(self, tmp_path, capsys):
        bogus = tmp_path / "bogus.json"
        bogus.write_text("{}")
        assert main(["report", "diff", str(bogus), str(bogus)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_evaluate_report_carries_geomeans(self, tmp_path, capsys):
        path = tmp_path / "fig7.json"
        assert main(["evaluate", "fig7", "--report", str(path)]) == 0
        capsys.readouterr()
        doc = json.loads(path.read_text())
        assert doc["command"] == "evaluate"
        assert doc["metrics"]["counters"]  # fabric + pipeline telemetry
