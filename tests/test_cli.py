"""CLI tests (`python -m repro`)."""

import pytest

from repro.__main__ import main


class TestCompile:
    def test_compile_single_target(self, capsys):
        assert main(["compile", "sobel3x3", "--target", "arm-neon"]) == 0
        out = capsys.readouterr().out
        assert "umlal" in out and "uabd" in out

    def test_compile_with_comparison(self, capsys):
        assert main(
            ["compile", "add", "--target", "hexagon-hvx", "--compare"]
        ) == 0
        out = capsys.readouterr().out
        assert "PITCHFORK" in out and "LLVM" in out and "faster" in out

    def test_compile_show_fpir(self, capsys):
        assert main(
            ["compile", "mul", "--target", "arm-neon", "--show-fpir"]
        ) == 0
        assert "rounding_mul_shr" in capsys.readouterr().out

    def test_compile_every_backend(self, capsys):
        assert main(["compile", "max_pool", "--target", "every"]) == 0
        out = capsys.readouterr().out
        for name in ("x86-avx2", "arm-neon", "hexagon-hvx",
                     "wasm-simd128", "riscv-rvv"):
            assert name in out

    def test_q31_substitution_note(self, capsys):
        assert main(
            ["compile", "mul", "--target", "hexagon-hvx", "--compare"]
        ) == 0
        assert "q31 substitution" in capsys.readouterr().out

    def test_compile_stats_breakdown(self, capsys):
        assert main(
            ["compile", "sobel3x3", "--target", "arm-neon", "--stats"]
        ) == 0
        out = capsys.readouterr().out
        assert "per-pass breakdown" in out
        for name in ("canonicalize", "lift", "lower", "backend", "total"):
            assert name in out
        assert "rewrites" in out

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            main(["compile", "not_a_benchmark"])


class TestOtherCommands:
    def test_workloads(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert out.count("\n") == 16

    def test_rules_summary(self, capsys):
        assert main(["rules"]) == 0
        out = capsys.readouterr().out
        assert "lifting (hand)" in out and "total:" in out

    def test_rules_verbose(self, capsys):
        assert main(["rules", "--verbose"]) == 0
        assert "lift-widening-add" in capsys.readouterr().out

    def test_synthesize(self, capsys):
        assert main(["synthesize", "add", "--max-candidates", "10"]) == 0
        assert "corpus:" in capsys.readouterr().out

    def test_evaluate_fig3(self, capsys):
        assert main(["evaluate", "fig3"]) == 0
        out = capsys.readouterr().out
        assert "Figure 3(a)" in out or "(a)" in out
