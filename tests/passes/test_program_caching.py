"""CompiledProgram must linearize once, not once per accessor call."""

from unittest import mock

from repro.machine import program as program_mod
from repro.pipeline import pitchfork_compile
from repro.targets import X86
from repro.workloads import by_name


def _compile():
    wl = by_name("add")
    return pitchfork_compile(wl.expr, X86, var_bounds=wl.var_bounds)


def test_linearize_called_once_across_accessors():
    prog = _compile()
    # pipeline.py imported the name directly; patch it there.
    with mock.patch(
        "repro.pipeline.linearize", side_effect=program_mod.linearize
    ) as spy:
        lines = prog.linearized()
        assert prog.linearized() is lines
        prog.assembly()
        prog.instructions
        assert spy.call_count == 1


def test_accessors_agree_with_fresh_linearize():
    prog = _compile()
    fresh = program_mod.linearize(prog.lowered)
    assert [l.mnemonic for l in prog.linearized()] == [
        l.mnemonic for l in fresh
    ]
    assert prog.instructions == [l.mnemonic for l in fresh]
    assert prog.assembly() == "\n".join(str(l) for l in fresh)
