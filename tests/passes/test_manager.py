"""Unit tests for the Pass protocol and the instrumented PassManager."""

import pytest

from repro.ir import builders as h
from repro.ir import expr as E
from repro.ir.types import U8
from repro.passes import CompileStats, Pass, PassContext, PassManager

a = h.var("a", U8)
b = h.var("b", U8)


class _Record(Pass):
    """Appends its name to a shared log; optionally transforms."""

    def __init__(self, name, log, transform=None, rewrites=0):
        self.name = name
        self._log = log
        self._transform = transform
        self._rewrites = rewrites

    def run(self, expr, ctx):
        self._log.append(self.name)
        ctx.rewrites += self._rewrites
        return self._transform(expr) if self._transform else expr


class TestPassManager:
    def test_passes_run_in_order(self):
        log = []
        pm = PassManager([_Record(n, log) for n in ("p1", "p2", "p3")])
        out, stats = pm.run(E.Add(a, b))
        assert log == ["p1", "p2", "p3"]
        assert out == E.Add(a, b)
        assert [p.name for p in stats.passes] == ["p1", "p2", "p3"]

    def test_result_threads_through_passes(self):
        log = []
        pm = PassManager([
            _Record("wrap", log, transform=lambda e: E.Min(e, e)),
            _Record("wrap2", log, transform=lambda e: E.Max(e, e)),
        ])
        out, _ = pm.run(a)
        assert out == E.Max(E.Min(a, a), E.Min(a, a))

    def test_stats_attribute_rewrite_deltas_per_pass(self):
        log = []
        pm = PassManager([
            _Record("p1", log, rewrites=3),
            _Record("p2", log, rewrites=0),
            _Record("p3", log, rewrites=5),
        ])
        _, stats = pm.run(a)
        assert [p.rewrites for p in stats.passes] == [3, 0, 5]
        assert stats.rewrites == 8

    def test_stats_record_node_counts(self):
        log = []
        pm = PassManager(
            [_Record("grow", log, transform=lambda e: E.Add(e, b))]
        )
        _, stats = pm.run(a)
        assert stats.passes[0].nodes_in == 1
        assert stats.passes[0].nodes_out == 3

    def test_times_are_positive_and_sum_below_total(self):
        log = []
        pm = PassManager([_Record(n, log) for n in ("p1", "p2")])
        _, stats = pm.run(a)
        assert all(p.seconds >= 0.0 for p in stats.passes)
        assert stats.total_seconds >= sum(p.seconds for p in stats.passes)

    def test_getitem_by_pass_name(self):
        log = []
        pm = PassManager([_Record("p1", log, rewrites=2)])
        _, stats = pm.run(a)
        assert stats["p1"].rewrites == 2
        with pytest.raises(KeyError):
            stats["nope"]

    def test_context_created_when_absent(self):
        seen = []

        class Probe(Pass):
            name = "probe"

            def run(self, expr, ctx):
                seen.append(ctx)
                return expr

        PassManager([Probe()]).run(a)
        assert isinstance(seen[0], PassContext)

    def test_format_table_lists_every_pass(self):
        log = []
        pm = PassManager([_Record(n, log) for n in ("alpha", "beta")])
        _, stats = pm.run(a)
        table = stats.format_table()
        assert "alpha" in table and "beta" in table and "total" in table

    def test_format_table_total_row_aggregates_node_flow(self):
        log = []
        pm = PassManager([
            _Record("grow", log, transform=lambda e: E.Add(e, b)),
            _Record("wrap", log, transform=lambda e: E.Min(e, e)),
        ])
        _, stats = pm.run(a)
        total_row = stats.format_table().splitlines()[-1]
        cols = total_row.split()
        # total row aligns with the header: ms, rewrites, nodes in/out
        assert cols[0] == "total"
        assert int(cols[2]) == stats.rewrites
        assert int(cols[3]) == stats.passes[0].nodes_in == 1
        assert int(cols[4]) == stats.passes[-1].nodes_out == 7

    def test_format_table_total_row_without_passes(self):
        _, stats = PassManager([]).run(a)
        total_row = stats.format_table().splitlines()[-1]
        assert total_row.split()[0] == "total"
        assert len(total_row.split()) == 3  # no node columns to aggregate

    def test_to_dict_round_trips_the_breakdown(self):
        log = []
        pm = PassManager([
            _Record("p1", log, rewrites=2),
            _Record("p2", log, transform=lambda e: E.Add(e, b)),
        ])
        _, stats = pm.run(a)
        data = stats.to_dict()
        assert data["total_seconds"] == stats.total_seconds
        assert data["rewrites"] == 2
        assert [p["name"] for p in data["passes"]] == ["p1", "p2"]
        assert data["passes"][1]["nodes_out"] == 3
        import json

        json.dumps(data)  # must be JSON-serializable as-is

    def test_empty_pipeline_is_identity(self):
        out, stats = PassManager([]).run(a)
        assert out is a
        assert stats.passes == [] and stats.rewrites == 0


class TestCompileStatsOnPrograms:
    def test_pitchfork_program_carries_stats(self):
        from repro.pipeline import pitchfork_compile
        from repro.targets import ARM
        from repro.workloads import by_name

        wl = by_name("sobel3x3")
        prog = pitchfork_compile(wl.expr, ARM, var_bounds=wl.var_bounds)
        assert isinstance(prog.stats, CompileStats)
        assert [p.name for p in prog.stats.passes] == [
            "canonicalize", "lift", "lower", "backend",
        ]
        assert prog.stats["lift"].rewrites > 0
        assert prog.compile_seconds == prog.stats.total_seconds
