"""Lift-strategy acceptance: e-graph vs greedy over the full 48-cell grid.

Three enforced contracts:

* **never worse, sometimes better** — on every (workload, target) cell the
  e-graph strategy's modelled cycles are <= greedy's (it is anchored to
  the greedy result by construction), and on at least one cell it is
  strictly better (otherwise the strategy is dead weight);
* **semantics preserved** — every cell where the strategies diverge is
  executed against the interpreter on random inputs;
* **cycles ratchet** — neither strategy may regress above the checked-in
  ``benchmarks/cycles_baseline.json`` snapshot;

plus the match-index acceptance criterion: over a coverage sweep the
discrimination tree must avoid at least 5x the match attempts it admits
(hit+miss >= 5*hit, i.e. the naive scan would try >= 5x more rules).
"""

import json
from pathlib import Path

import pytest

from repro.interp import compile_expr
from repro.pipeline import pitchfork_compile
from repro.targets import PAPER_TARGETS
from repro.workloads import WORKLOADS, by_name

BASELINE = json.loads(
    (
        Path(__file__).parent / ".." / ".." / "benchmarks"
        / "cycles_baseline.json"
    ).read_text()
)["cells"]
CELLS = [
    (name, target) for name in WORKLOADS for target in PAPER_TARGETS
]


@pytest.fixture(scope="module")
def grid():
    """Both strategies compiled over every cell, once per module."""
    out = {}
    for name, target in CELLS:
        wl = by_name(name)
        out[(name, target.name)] = (
            pitchfork_compile(wl.expr, target, var_bounds=wl.var_bounds),
            pitchfork_compile(
                wl.expr,
                target,
                var_bounds=wl.var_bounds,
                lift_strategy="egraph",
            ),
        )
    return out


def test_baseline_covers_full_grid():
    assert len(BASELINE) == len(WORKLOADS) * len(PAPER_TARGETS) == 48


def test_egraph_never_worse_and_strictly_better_somewhere(grid):
    wins = []
    for (name, tname), (greedy, egraph) in grid.items():
        gc, ec = greedy.cost().total, egraph.cost().total
        assert ec <= gc, (
            f"egraph worse than greedy on {name}|{tname}: {ec} > {gc}"
        )
        if ec < gc:
            wins.append((name, tname, gc, ec))
    assert wins, "egraph strategy never beat greedy on any cell"


def test_divergent_cells_preserve_semantics(grid):
    for (name, tname), (greedy, egraph) in grid.items():
        if greedy.lowered is egraph.lowered:
            continue
        wl = by_name(name)
        src_fn = compile_expr(wl.expr)
        for round_idx in range(3):
            env = wl.random_env(lanes=16, seed=23 + round_idx)
            ref = src_fn(env, 16)
            assert egraph.run(env, 16) == ref, f"{name}|{tname}"
            assert greedy.run(env, 16) == ref, f"{name}|{tname}"


@pytest.mark.parametrize("strategy", ["greedy", "egraph"])
def test_cycles_ratchet(grid, strategy):
    regressions = []
    for (name, tname), progs in grid.items():
        prog = progs[0] if strategy == "greedy" else progs[1]
        base = BASELINE[f"{name}|{tname}"][strategy]
        got = prog.cost().total
        if got > base + 1e-9:
            regressions.append(f"{name}|{tname}: {got} > {base}")
    assert not regressions, (
        f"{strategy} cycles regressed vs benchmarks/cycles_baseline.json:"
        f" {regressions}"
    )


def test_match_index_avoids_5x_attempts():
    """Acceptance: over a suite coverage sweep, the rules the index
    prunes (misses) plus the rules it admits (hits) — i.e. what the naive
    scan would have attempted — is at least 5x the admitted count."""
    from repro.evaluation.coverage import run_coverage

    report = run_coverage()
    assert not report.failures
    hits = misses = 0
    for c in report.metrics.counters("match_index"):
        labels = dict(c.labels)
        if labels["outcome"] == "hit":
            hits += c.value
        else:
            misses += c.value
    assert hits > 0 and misses > 0
    assert hits + misses >= 5 * hits, (
        f"index admitted too much: {hits} hits of {hits + misses} "
        f"attempts ({(hits + misses) / hits:.1f}x reduction)"
    )
