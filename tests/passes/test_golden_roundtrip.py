"""Pipeline refactor round-trip: bit-identical to the pre-refactor seed.

``golden_seed.json`` was captured from the seed tree (before the
PassManager/interning/memoization work) by compiling every workload for
x86, ARM and HVX and recording the selected instruction sequence and the
modelled cycle count.  The refactor is required to be semantics-
preserving, so the current pipeline must reproduce both exactly.
"""

import json
from pathlib import Path

import pytest

from repro.pipeline import pitchfork_compile
from repro.targets import ARM, HVX, X86
from repro.workloads import WORKLOADS, by_name

GOLDEN = json.loads(
    (Path(__file__).parent / "golden_seed.json").read_text()
)
TARGETS = {"x86-avx2": X86, "arm-neon": ARM, "hexagon-hvx": HVX}


def test_golden_covers_full_matrix():
    assert len(GOLDEN) == len(WORKLOADS) * len(TARGETS)


@pytest.mark.parametrize("target_name", sorted(TARGETS))
@pytest.mark.parametrize("name", WORKLOADS)
def test_roundtrip_matches_seed(name, target_name):
    wl = by_name(name)
    golden = GOLDEN[f"{name}|{target_name}"]
    prog = pitchfork_compile(
        wl.expr, TARGETS[target_name], var_bounds=wl.var_bounds
    )
    assert prog.instructions == golden["instructions"]
    assert prog.cost().total == pytest.approx(golden["cycles"])
