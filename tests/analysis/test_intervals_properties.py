"""Differential property: interval analysis vs the compiled evaluator.

The whole static-analysis stack (predicated rules, the L107 lint, the
restricted-hint soundness argument) rests on one invariant: for any
well-typed expression, :class:`BoundsAnalyzer` returns an interval that
contains every value the expression can actually take.  Check it
directly against the compiled evaluator on random expressions — both
with no hints (full type ranges) and with per-variable hint intervals
that the drawn environments respect.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.analysis.intervals import BoundsAnalyzer, Interval
from repro.interp.compiled import compile_expr
from repro.ir import expr as E

from tests.interp.test_compiled import _env_for, exprs


@settings(max_examples=200, deadline=None)
@given(e=exprs(), data=st.data(), lanes=st.integers(1, 4))
def test_unhinted_bounds_contain_compiled_values(e, data, lanes):
    env = _env_for(e, data, lanes)
    values = compile_expr(e)(env, lanes)
    box = BoundsAnalyzer().bounds(e)
    for v in values:
        assert box.lo <= v <= box.hi, (
            f"{e} evaluated to {v} outside [{box.lo}, {box.hi}] "
            f"with env {env}"
        )


def _hinted_env_for(expr, data, lanes):
    """Draw (env, hints) where every lane value honors its hint."""
    env, hints = {}, {}
    for node in expr.walk():
        if isinstance(node, E.Var) and node.name not in env:
            t = node.type
            lo = data.draw(st.integers(t.min_value, t.max_value))
            hi = data.draw(st.integers(lo, t.max_value))
            hints[node.name] = Interval(lo, hi)
            env[node.name] = [
                data.draw(st.integers(lo, hi)) for _ in range(lanes)
            ]
    return env, hints


@settings(max_examples=200, deadline=None)
@given(e=exprs(), data=st.data(), lanes=st.integers(1, 4))
def test_hinted_bounds_contain_compiled_values(e, data, lanes):
    env, hints = _hinted_env_for(e, data, lanes)
    values = compile_expr(e)(env, lanes)
    box = BoundsAnalyzer(hints).bounds(e)
    for v in values:
        assert box.lo <= v <= box.hi, (
            f"{e} evaluated to {v} outside [{box.lo}, {box.hi}] "
            f"with env {env}, hints {hints}"
        )


@settings(max_examples=100, deadline=None)
@given(e=exprs(), data=st.data())
def test_hints_never_widen_the_unhinted_box(e, data):
    # Extra information can only tighten a sound analysis.
    _env, hints = _hinted_env_for(e, data, 1)
    base = BoundsAnalyzer().bounds(e)
    hinted = BoundsAnalyzer(hints).bounds(e)
    assert base.lo <= hinted.lo <= hinted.hi <= base.hi
