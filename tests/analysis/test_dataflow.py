"""The dataflow framework: solver, canned analyses, pressure report.

The hypothesis property pins the lattice liveness solver against a
brute-force per-name recomputation (scan forward from each point for a
use before a redefinition) on the lowered programs of the full workload
x target matrix — the two formulations only agree when the transfer
function, the boundary condition and the program-order bookkeeping are
all right.
"""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.analysis.dataflow import (
    MachineProgram,
    def_use_chains,
    liveness,
    reaching_definitions,
    register_pressure,
)
from repro.pipeline import pitchfork_compile
from repro.targets import PAPER_TARGETS, by_name as target_by_name
from repro.workloads import WORKLOADS, by_name


@pytest.fixture
def diamond():
    """t0 = a+b; t1 = t0*t0 (a value used twice, an input dying early)."""
    return MachineProgram.from_lines(
        [
            ("t0", "add", ["a", "b"]),
            ("t1", "mul", ["t0", "t0"]),
        ],
        inputs=["a", "b"],
    )


class TestMachineProgram:
    def test_from_expr_matches_listing(self):
        wl = by_name("sobel3x3")
        prog = pitchfork_compile(
            wl.expr, target_by_name("arm-neon"), var_bounds=wl.var_bounds
        )
        view = MachineProgram.from_expr(prog.lowered)
        lines = prog.linearized()
        assert len(view) == len(lines)
        assert [i.dst for i in view.instrs] == [l.dst for l in lines]
        assert view.result == lines[-1].dst
        # Every use is either an input or defined strictly earlier.
        for ins in view.instrs:
            for use in ins.uses:
                if use not in view.inputs:
                    assert view.def_index(use) < ins.index

    def test_const_operands_are_not_uses(self):
        p = MachineProgram.from_lines(
            [("t0", "shl", ["a"])], inputs=["a"]
        )
        assert p.instrs[0].uses == ("a",)

    def test_result_of_empty_program(self):
        assert MachineProgram(instrs=[]).result is None


class TestCannedAnalyses:
    def test_def_use_chains(self, diamond):
        chains = def_use_chains(diamond)
        assert chains["a"].def_index is None
        assert chains["a"].uses == [0]
        assert chains["t0"].def_index == 0
        assert chains["t0"].uses == [1, 1]
        assert not chains["t1"].uses  # the result: no reader, not dead
        assert chains["t1"].is_dead  # ...as a raw chain property

    def test_liveness(self, diamond):
        live = liveness(diamond)
        assert live.live_in[0] == frozenset({"a", "b"})
        assert live.live_out[0] == frozenset({"t0"})
        assert live.live_out[1] == frozenset({"t1"})
        assert live.live_across(0) == frozenset({"a", "b", "t0"})

    def test_reaching_definitions(self, diamond):
        reach = reaching_definitions(diamond)
        assert reach[0] == frozenset({("a", -1), ("b", -1)})
        assert reach[1] == frozenset(
            {("a", -1), ("b", -1), ("t0", 0)}
        )

    def test_redefinition_kills(self):
        p = MachineProgram.from_lines(
            [
                ("t0", "add", ["a", "a"]),
                ("t0", "mul", ["t0", "t0"]),
            ],
            inputs=["a"],
        )
        reach = reaching_definitions(p)
        assert ("t0", 0) in reach[1]
        live = liveness(p)
        assert "t0" not in live.live_in[0]

    def test_register_pressure(self, diamond):
        report = register_pressure(diamond)
        assert report.max_live == 3  # a, b, t0 across instruction 0
        assert report.at_index == 0
        assert report.timeline == [3, 2]
        assert report.peak_values == ("a", "b", "t0")
        assert "3 values live at peak" in report.format_line()
        assert register_pressure(MachineProgram(instrs=[])).max_live == 0


# ----------------------------------------------------------------------
# Property: solver liveness == brute force, over the compiled matrix
# ----------------------------------------------------------------------
_CELLS = [(w, t.name) for w in WORKLOADS for t in PAPER_TARGETS]
_PROGRAMS = {}


def _program(cell):
    view = _PROGRAMS.get(cell)
    if view is None:
        wl_name, target_name = cell
        wl = by_name(wl_name)
        prog = pitchfork_compile(
            wl.expr, target_by_name(target_name), var_bounds=wl.var_bounds
        )
        view = _PROGRAMS[cell] = MachineProgram.from_expr(prog.lowered)
    return view


def _brute_live_in(program, name, index):
    """Is ``name`` live entering ``index``?  Scan forward for a use
    before a redefinition — the definition of liveness, no lattice."""
    for ins in program.instrs[index:]:
        if name in ins.uses:
            return True
        if ins.dst == name:
            return False
    return name == program.result


@settings(max_examples=60, deadline=None)
@given(cell=st.sampled_from(_CELLS), data=st.data())
def test_liveness_matches_brute_force(cell, data):
    program = _program(cell)
    live = liveness(program)
    names = set(program.inputs) | {i.dst for i in program.instrs}
    index = data.draw(st.integers(0, len(program) - 1))
    expected = frozenset(
        n for n in names if _brute_live_in(program, n, index)
    )
    assert live.live_in[index] == expected, (
        f"{'@'.join(cell)} live-in mismatch at instruction {index}"
    )
    expected_out = frozenset(
        n for n in names if _brute_live_in(program, n, index + 1)
    ) if index + 1 < len(program) else frozenset({program.result})
    assert live.live_out[index] == expected_out
