"""§8.3: targeting relaxed instructions deterministically.

WebAssembly's relaxed ``i16x8.q15mulr_s`` is non-deterministic only for
``INT16_MIN * INT16_MIN`` (where saturation may or may not apply).
PITCHFORK "can be matched ... in conjunction with its bounds inference
machinery to prove that the original code cannot overflow, therefore
allowing deterministic use of the relaxed instruction ... if either x_i16
or y_i16 cannot be INT16MIN."

This test reproduces that check: the predicate a relaxed-SIMD backend
would use, answered by the same bounds engine the §3.3 predicated rules
use.
"""

from repro import fpir as F
from repro.analysis import BoundsAnalyzer, BoundsContext, Interval
from repro.interp import evaluate_scalar
from repro.ir import builders as h
from repro.ir.types import I16

INT16_MIN = -32768


def relaxed_q15mulr_usable(node: F.RoundingMulShr, ctx: BoundsContext) -> bool:
    """True iff the relaxed instruction is deterministic for this use:
    some operand provably excludes INT16_MIN."""
    if not isinstance(node.shift, type(h.const(I16, 15))):
        return False
    if node.shift.value != 15:
        return False
    return ctx.lower_bounded(node.a, INT16_MIN + 1) or ctx.lower_bounded(
        node.b, INT16_MIN + 1
    )


def _node():
    return F.RoundingMulShr(
        h.var("x", I16), h.var("y", I16), h.const(I16, 15)
    )


class TestRelaxedDeterminism:
    def test_full_range_operands_rejected(self):
        ctx = BoundsContext(BoundsAnalyzer())
        assert not relaxed_q15mulr_usable(_node(), ctx)

    def test_bounded_operand_accepted(self):
        ctx = BoundsContext(
            BoundsAnalyzer({"x": Interval(-32767, 32767)})
        )
        assert relaxed_q15mulr_usable(_node(), ctx)

    def test_either_operand_suffices(self):
        ctx = BoundsContext(BoundsAnalyzer({"y": Interval(0, 100)}))
        assert relaxed_q15mulr_usable(_node(), ctx)

    def test_wrong_shift_rejected(self):
        node = F.RoundingMulShr(
            h.var("x", I16), h.var("y", I16), h.const(I16, 14)
        )
        ctx = BoundsContext(BoundsAnalyzer({"x": Interval(0, 10)}))
        assert not relaxed_q15mulr_usable(node, ctx)

    def test_nondeterministic_point_is_the_saturation_case(self):
        # The single input where relaxed implementations may disagree:
        # INT16_MIN * INT16_MIN saturates under FPIR semantics.
        out = evaluate_scalar(_node(), {"x": INT16_MIN, "y": INT16_MIN})
        assert out == 32767  # the deterministic (saturating) answer
