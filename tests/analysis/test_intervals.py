"""Unit + property tests for bounds inference (§3.3's predicate engine)."""

import pytest
from hypothesis import given, settings
import hypothesis.strategies as st

from repro import fpir as F
from repro.analysis import BoundsAnalyzer, BoundsContext, Interval
from repro.interp import evaluate_scalar
from repro.ir import builders as h
from repro.ir import expr as E
from repro.ir.types import I8, I16, I32, U8, U16

a = h.var("a", U8)
b = h.var("b", U8)
s = h.var("s", I8)


def bounds(e, var_bounds=None):
    return BoundsAnalyzer(var_bounds).bounds(e)


class TestIntervalBasics:
    def test_empty_interval_rejected(self):
        with pytest.raises(ValueError):
            Interval(3, 2)

    def test_of_type(self):
        assert Interval.of_type(U8) == Interval(0, 255)
        assert Interval.of_type(I8) == Interval(-128, 127)

    def test_fits_and_clamp(self):
        assert Interval(0, 100).fits(U8)
        assert not Interval(-1, 100).fits(U8)
        assert Interval(-10, 300).clamped(U8) == Interval(0, 255)

    def test_union_and_contains(self):
        u = Interval(0, 3).union(Interval(10, 12))
        assert u == Interval(0, 12)
        assert 5 in u and 13 not in u


class TestCoreTransfer:
    def test_var_defaults_to_type_range(self):
        assert bounds(a) == Interval(0, 255)

    def test_var_hint_narrows(self):
        assert bounds(a, {"a": Interval(0, 10)}) == Interval(0, 10)

    def test_widening_cast_preserves(self):
        assert bounds(h.u16(a)) == Interval(0, 255)

    def test_add_exact_when_no_overflow(self):
        assert bounds(h.u16(a) + h.u16(b)) == Interval(0, 510)

    def test_add_gives_up_on_possible_wrap(self):
        assert bounds(a + b) == Interval(0, 255)  # u8 wrap possible

    def test_mul_corners(self):
        # Interval arithmetic treats the two operands as independent, so
        # the square's lower corner is min*max (it cannot see x == x).
        x = h.var("x", I16)
        got = bounds(h.i32(x) * h.i32(x))
        assert got.hi == 32768 * 32768
        assert got.lo == -32768 * 32767

    def test_shift_by_constant(self):
        assert bounds(h.u16(a) << 4) == Interval(0, 255 << 4)
        assert bounds(h.u16(a) >> 4) == Interval(0, 15)

    def test_div_by_constant(self):
        assert bounds(h.u16(a) // 4) == Interval(0, 63)

    def test_min_max(self):
        assert bounds(h.minimum(h.u16(a), 100)) == Interval(0, 100)
        assert bounds(h.maximum(h.u16(a), 100)) == Interval(100, 255)

    def test_select_union(self):
        cond = E.LT(a, b)
        e = h.select(cond, h.const(U8, 10), h.const(U8, 20))
        assert bounds(e) == Interval(10, 20)

    def test_comparison_is_bool(self):
        assert bounds(E.LT(a, b)) == Interval(0, 1)


class TestFPIRTransfer:
    def test_widening_add(self):
        assert bounds(F.WideningAdd(a, b)) == Interval(0, 510)

    def test_widening_sub_goes_negative(self):
        assert bounds(F.WideningSub(a, b)) == Interval(-255, 255)

    def test_halving_add(self):
        assert bounds(F.HalvingAdd(a, b)) == Interval(0, 255)

    def test_rounding_halving_add_hint(self):
        hint = {"a": Interval(0, 10), "b": Interval(0, 20)}
        assert bounds(F.RoundingHalvingAdd(a, b), hint) == Interval(0, 15)

    def test_absd(self):
        hint = {"a": Interval(100, 110), "b": Interval(0, 10)}
        assert bounds(F.Absd(a, b), hint) == Interval(90, 110)

    def test_saturating_cast_clamps(self):
        x = h.var("x", I16)
        assert bounds(F.SaturatingCast(U8, x)) == Interval(0, 255)

    def test_saturating_add_clamps(self):
        assert bounds(F.SaturatingAdd(a, b)) == Interval(0, 255)

    def test_compositional_ops_via_expansion(self):
        # rounding_shr has no bespoke transfer function; its bounds come
        # from analyzing the Table 1 expansion.
        x = h.var("x", U16)
        e = F.RoundingShr(x, h.const(U16, 4))
        got = bounds(e, {"x": Interval(0, 4080)})
        assert got.hi <= 255 and got.lo >= 0

    def test_rounding_mul_shr_bounds(self):
        x = h.var("x", I16)
        y = h.var("y", I16)
        e = F.RoundingMulShr(x, y, h.const(I16, 15))
        got = bounds(e)
        # sound and within the result type's range
        assert -32768 <= got.lo <= got.hi <= 32767


class TestBoundsContext:
    def test_upper_bounded(self):
        ctx = BoundsContext(BoundsAnalyzer())
        e = h.u16(a) + h.u16(b)
        assert ctx.upper_bounded(e, 510)
        assert not ctx.upper_bounded(e, 509)

    def test_lower_bounded(self):
        ctx = BoundsContext(BoundsAnalyzer())
        assert ctx.lower_bounded(h.u16(a), 0)
        assert not ctx.lower_bounded(h.u16(a), 1)

    def test_nonzero(self):
        ctx = BoundsContext(BoundsAnalyzer({"a": Interval(3, 9)}))
        assert ctx.nonzero(a)
        ctx2 = BoundsContext(BoundsAnalyzer())
        assert not ctx2.nonzero(a)

    def test_cache_reuse(self):
        an = BoundsAnalyzer()
        e = h.u16(a) + h.u16(b)
        first = an.bounds(e)
        assert an.bounds(e) is first  # cached object


@settings(max_examples=150, deadline=None)
@given(
    av=st.integers(min_value=0, max_value=255),
    bv=st.integers(min_value=0, max_value=255),
    sv=st.integers(min_value=-8, max_value=8),
)
def test_bounds_are_sound(av, bv, sv):
    """Soundness: every concrete evaluation lies within inferred bounds."""
    exprs = [
        h.u16(a) + h.u16(b) * 3,
        F.WideningSub(a, b),
        F.RoundingHalvingAdd(a, b),
        F.Absd(a, b),
        E.Shl(h.u16(a), E.Cast(U16, s)),
        F.SaturatingAdd(a, b),
        h.select(E.LT(a, b), h.u16(a), h.u16(b) + 2),
    ]
    analyzer = BoundsAnalyzer()
    env = {"a": av, "b": bv, "s": sv}
    for e in exprs:
        iv = analyzer.bounds(e)
        v = evaluate_scalar(e, env)
        assert iv.lo <= v <= iv.hi, f"{e}: {v} not in {iv}"
