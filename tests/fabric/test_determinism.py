"""The fabric's headline guarantee: ``jobs=N`` output == ``jobs=1``.

Reports are compared as rendered bytes (JSON / tables), not just as
semantically-equal objects — CI diffs artifacts across runs, so byte
identity is the contract.
"""

import pytest

from repro.evaluation.ablation import run_ablation
from repro.evaluation.coverage import run_coverage
from repro.fabric import ResultCache
from repro.synthesis.driver import synthesize_lifting_rules
from repro.verify import batch_verify_rules

WORKLOADS = ["add", "mean", "softmax"]


class TestCoverage:
    def test_parallel_coverage_is_byte_identical(self):
        serial = run_coverage(workload_names=WORKLOADS, jobs=1)
        parallel = run_coverage(workload_names=WORKLOADS, jobs=4)
        assert serial.to_json() == parallel.to_json()
        assert serial.format_table(verbose=True) == parallel.format_table(
            verbose=True
        )

    def test_cached_coverage_is_byte_identical(self, tmp_path):
        serial = run_coverage(workload_names=WORKLOADS, jobs=1)
        cache = ResultCache(root=str(tmp_path))
        cold = run_coverage(workload_names=WORKLOADS, cache=cache)
        warm = run_coverage(workload_names=WORKLOADS, cache=cache)
        assert serial.to_json() == cold.to_json() == warm.to_json()
        assert cache.hits > 0

    def test_merged_metrics_match_serial_totals(self):
        # Per-cell registries merged in input order must sum to exactly
        # what the old shared-registry sweep accumulated.
        serial = run_coverage(workload_names=WORKLOADS, jobs=1)
        parallel = run_coverage(workload_names=WORKLOADS, jobs=4)
        for counter in serial.metrics.counters("rule_fired"):
            assert parallel.metrics.counter_value(
                "rule_fired", **dict(counter.labels)
            ) == counter.value


class TestVerification:
    @pytest.fixture(scope="class")
    def serial(self):
        return batch_verify_rules(
            ["lifting-hand"], jobs=1, max_type_combos=4,
            max_const_samples=3, max_points=200,
        )

    def _key(self, results):
        return [
            (label, r.rule_name, r.ok, r.checked_combos, r.checked_points)
            for label, r in results
        ]

    def test_parallel_verification_matches(self, serial):
        parallel = batch_verify_rules(
            ["lifting-hand"], jobs=4, max_type_combos=4,
            max_const_samples=3, max_points=200,
        )
        assert self._key(serial) == self._key(parallel)

    def test_cached_verification_matches(self, serial, tmp_path):
        cache = ResultCache(root=str(tmp_path))
        cold = batch_verify_rules(
            ["lifting-hand"], cache=cache, max_type_combos=4,
            max_const_samples=3, max_points=200,
        )
        warm = batch_verify_rules(
            ["lifting-hand"], cache=cache, max_type_combos=4,
            max_const_samples=3, max_points=200,
        )
        assert self._key(serial) == self._key(cold) == self._key(warm)
        assert cache.misses == len(serial) and cache.hits == len(serial)

    def test_different_budgets_do_not_share_entries(self, tmp_path):
        # Sample budgets are part of the key (params): a cheap verdict
        # must never satisfy a request for a thorough one.
        cache = ResultCache(root=str(tmp_path))
        batch_verify_rules(
            ["lifting-hand"], cache=cache, max_type_combos=2,
            max_const_samples=2, max_points=50,
        )
        cache2 = ResultCache(root=str(tmp_path))
        batch_verify_rules(
            ["lifting-hand"], cache=cache2, max_type_combos=4,
            max_const_samples=3, max_points=200,
        )
        assert cache2.hits == 0


class TestEvaluationAndSynthesis:
    def test_parallel_ablation_matches(self):
        serial = run_ablation(workload_names=WORKLOADS)
        parallel = run_ablation(workload_names=WORKLOADS, jobs=4)
        assert serial.format_table() == parallel.format_table()

    def test_fabric_synthesis_produces_identical_rules(self, tmp_path):
        serial = synthesize_lifting_rules(max_candidates=10)
        fab = synthesize_lifting_rules(
            max_candidates=10, jobs=4,
            cache=ResultCache(root=str(tmp_path)),
        )
        assert serial.summary() == fab.summary()
        assert [
            (r.name, r.source, repr(r.lhs), repr(r.rhs))
            for r in serial.rules
        ] == [
            (r.name, r.source, repr(r.lhs), repr(r.rhs))
            for r in fab.rules
        ]
