"""Cross-process observability through the fabric: spans + snapshots.

The PR-7 acceptance criteria live here: a parallel sweep produces one
merged Chrome trace with worker spans on distinct per-pid lanes and
nesting preserved, worker metric snapshots merge losslessly for every
job kind (not just coverage), and cache hits get correctly-anchored
reconstructed spans.
"""

import os
import time

from repro.evaluation.ablation import run_ablation
from repro.evaluation.coverage import run_coverage
from repro.fabric import ResultCache, TaskSpec, run_tasks
from repro.fabric.scheduler import job_kind, worker_observation
from repro.observe import MetricsRegistry, Tracer
from repro.verify import batch_verify_rules

WORKLOADS = ["add", "mean"]


@job_kind("t-obs")
def _t_obs(spec):
    # Exercise the worker-observation side channel like real job kinds.
    wo = worker_observation()
    if wo is not None:
        wo.metrics.counter("t_obs_runs", key=spec.key[0]).inc()
        with wo.tracer.span("inner-work", key=spec.key[0]):
            pass
    return spec.key[0]


@job_kind(
    "t-obs-slow",
    cacheable=True,
    cache_parts=lambda spec: spec.key,
)
def _t_obs_slow(spec):
    time.sleep(0.01)
    return spec.key[0]


def _counter_snapshot(registry):
    """Deterministic view of a registry: every counter, sorted."""
    return sorted(
        (c.name, c.labels, c.value) for c in registry.counters()
    )


class TestWorkerSpans:
    def test_pool_spans_land_on_worker_pid_lanes(self):
        tracer = Tracer()
        specs = [TaskSpec("t-obs", (str(i),)) for i in range(4)]
        run_tasks(specs, jobs=2, tracer=tracer)
        task_spans = [s for s in tracer.spans if s.name == "task:t-obs"]
        assert len(task_spans) == 4
        worker_pids = {s.pid for s in task_spans}
        assert worker_pids and os.getpid() not in worker_pids
        assert all(s.args["outcome"] == "ok" for s in task_spans)
        # Nested spans from inside the job body survive the merge.
        inner = [s for s in tracer.spans if s.name == "inner-work"]
        assert len(inner) == 4
        assert all(s.depth == 1 for s in inner)
        assert {s.pid for s in inner} == worker_pids

    def test_chrome_export_names_worker_lanes(self):
        tracer = Tracer()
        specs = [TaskSpec("t-obs", (str(i),)) for i in range(4)]
        run_tasks(specs, jobs=2, tracer=tracer)
        events = tracer.to_chrome_trace()
        lane_names = {
            e["args"]["name"] for e in events if e["ph"] == "M"
        }
        assert any(n.startswith("worker-") for n in lane_names)
        # Worker span timestamps are re-anchored onto the parent
        # timeline: nothing may start before the sweep began.
        spans = [e for e in events if e["ph"] == "X"]
        assert all(e["ts"] > -1e4 for e in spans)

    def test_inline_spans_record_true_starts(self):
        tracer = Tracer()
        t_before = tracer._now_us()
        specs = [TaskSpec("t-obs-slow", (str(i),)) for i in range(3)]
        run_tasks(specs, jobs=1, tracer=tracer)
        spans = [s for s in tracer.spans if s.name.startswith("task:")]
        assert len(spans) == 3
        # Serial tasks run back to back: each span must start at (or
        # after) the previous one's end, never stack at merge time.
        for prev, cur in zip(spans, spans[1:]):
            assert cur.start_us >= prev.start_us + prev.duration_us - 1e3
        assert all(s.start_us >= t_before - 1e3 for s in spans)

    def test_cache_hit_spans_are_anchored_not_backdated(self, tmp_path):
        cache = ResultCache(root=str(tmp_path))
        specs = [TaskSpec("t-obs-slow", (str(i),)) for i in range(2)]
        run_tasks(specs, jobs=1, cache=cache)  # warm
        tracer = Tracer()
        sweep_start = tracer._now_us()
        run_tasks(specs, jobs=1, cache=cache, tracer=tracer)
        assert cache.hits == 2
        spans = [s for s in tracer.spans if s.name.startswith("task:")]
        assert len(spans) == 2
        # A cached hit takes ~0s but ran *now*: its reconstructed span
        # must start inside this sweep, not before the tracer existed.
        for s in spans:
            assert s.start_us >= sweep_start - 1e4
            assert s.duration_us < 1e6


class TestWorkerMetrics:
    def test_side_channel_snapshot_merges_for_custom_kind(self):
        for jobs in (1, 3):
            metrics = MetricsRegistry()
            specs = [TaskSpec("t-obs", (str(i),)) for i in range(3)]
            run_tasks(specs, jobs=jobs, metrics=metrics)
            for i in range(3):
                assert metrics.counter_value(
                    "t_obs_runs", key=str(i)
                ) == 1, jobs

    def test_verify_rule_kind_reports_metrics(self):
        serial, parallel = MetricsRegistry(), MetricsRegistry()
        kw = dict(max_type_combos=2, max_const_samples=2, max_points=50)
        batch_verify_rules(
            ["lifting-hand"], jobs=1, metrics=serial, **kw
        )
        batch_verify_rules(
            ["lifting-hand"], jobs=4, metrics=parallel, **kw
        )
        ok = serial.counter_value(
            "verify_rules", ruleset="lifting-hand", outcome="ok"
        )
        assert ok > 0
        assert _counter_snapshot(serial) == _counter_snapshot(parallel)

    def test_ablation_kind_reports_pipeline_metrics(self):
        serial, parallel = MetricsRegistry(), MetricsRegistry()
        run_ablation(workload_names=WORKLOADS, metrics=serial)
        run_ablation(workload_names=WORKLOADS, jobs=3, metrics=parallel)
        assert any(c.name == "rule_fired" for c in serial.counters())
        assert _counter_snapshot(serial) == _counter_snapshot(parallel)


class TestCoverageAcceptance:
    def test_parallel_sweep_trace_and_snapshot(self):
        """The headline check: --jobs 4 --trace coverage produces worker
        lanes with nesting AND a merged snapshot equal to --jobs 1."""
        serial = run_coverage(workload_names=WORKLOADS, jobs=1)
        tracer = Tracer()
        parallel = run_coverage(
            workload_names=WORKLOADS, jobs=4, tracer=tracer
        )
        # Deterministic counters merge to exactly the serial totals.
        assert _counter_snapshot(serial.metrics) == _counter_snapshot(
            parallel.metrics
        )
        # The trace shows distinct worker lanes with preserved nesting:
        # every compile span sits under a task:coverage root.
        task_spans = [
            s for s in tracer.spans if s.name == "task:coverage"
        ]
        assert task_spans
        assert os.getpid() not in {s.pid for s in task_spans}
        compile_spans = [
            s for s in tracer.spans if s.name == "compile"
        ]
        assert compile_spans
        assert all(s.depth >= 1 for s in compile_spans)
        assert {s.pid for s in compile_spans} <= {
            s.pid for s in task_spans
        }
