"""Result-cache contract: content addressing, invalidation, resilience."""

import json
import os
import subprocess
import sys

import pytest

from repro.fabric import (
    ResultCache,
    TaskSpec,
    default_cache_dir,
    eval_backend_fingerprint,
    expr_fingerprint,
    pipeline_rules_fingerprint,
    predicate_fingerprint,
    rule_fingerprint,
    rulebase_fingerprint,
    run_tasks,
)
from repro.ir import builders as h
from repro.ir.types import I16, U8
from repro.observe import MetricsRegistry
from repro.trs.rule import Rule

REPO_SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")


def _entry_files(root):
    return [
        os.path.join(dirpath, f)
        for dirpath, _dirs, files in os.walk(root)
        for f in files
        if f.endswith(".json")
    ]


class TestBasicOperation:
    def test_miss_store_hit_cycle(self, tmp_path):
        cache = ResultCache(root=str(tmp_path))
        key = cache.key("t-echo", "part")
        hit, _ = cache.get("t-echo", key)
        assert not hit and cache.misses == 1
        cache.put("t-echo", key, {"v": 1})
        assert cache.stores == 1
        hit, value = cache.get("t-echo", key)
        assert hit and value == {"v": 1} and cache.hits == 1

    def test_metrics_mirroring(self, tmp_path):
        metrics = MetricsRegistry()
        cache = ResultCache(root=str(tmp_path), metrics=metrics)
        key = cache.key("t-echo", "p")
        cache.get("t-echo", key)
        cache.put("t-echo", key, 1)
        cache.get("t-echo", key)
        for outcome in ("hit", "miss", "store"):
            assert metrics.counter_value(
                "result_cache", kind="t-echo", outcome=outcome
            ) == 1

    def test_stats_and_clear(self, tmp_path):
        cache = ResultCache(root=str(tmp_path))
        cache.put("a", cache.key("a", "1"), 1)
        cache.put("b", cache.key("b", "2"), 2)
        s = cache.stats()
        assert s["entries"] == 2 and s["by_kind"] == {"a": 1, "b": 1}
        assert cache.clear() == 2
        assert cache.stats()["entries"] == 0

    def test_stats_split_bytes_per_kind(self, tmp_path):
        cache = ResultCache(root=str(tmp_path))
        cache.put("small", cache.key("small", "1"), 1)
        cache.put("big", cache.key("big", "1"), "x" * 4096)
        s = cache.stats()
        assert set(s["kind_bytes"]) == {"small", "big"}
        assert s["kind_bytes"]["big"] > s["kind_bytes"]["small"] > 0
        assert sum(s["kind_bytes"].values()) == s["bytes"]

    def test_default_dir_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", "/tmp/elsewhere")
        assert default_cache_dir() == "/tmp/elsewhere"
        monkeypatch.delenv("REPRO_CACHE_DIR")
        assert default_cache_dir() == ".repro-cache"


class TestInvalidation:
    """Any semantic input change must produce a different key."""

    def test_version_bump_misses(self, tmp_path):
        old = ResultCache(root=str(tmp_path), version="1.0")
        key = old.key("t-echo", "same-content")
        old.put("t-echo", key, "stale")
        new = ResultCache(root=str(tmp_path), version="2.0")
        assert new.key("t-echo", "same-content") != key
        hit, _ = new.get("t-echo", new.key("t-echo", "same-content"))
        assert not hit

    def test_different_target_is_a_different_key(self):
        arm = pipeline_rules_fingerprint("arm-neon")
        hvx = pipeline_rules_fingerprint("hexagon-hvx")
        assert arm != hvx

    def test_rulebase_mutation_changes_fingerprint(self):
        x = h.var("x", I16)
        r1 = Rule("r1", h.maximum(x, h.const(I16, 0)), x)
        r2 = Rule("r2", h.minimum(x, h.const(I16, 0)), x)
        base = rulebase_fingerprint([r1])
        assert rulebase_fingerprint([r1, r2]) != base
        # Order matters: the engine applies rules in priority order.
        assert rulebase_fingerprint([r2, r1]) != rulebase_fingerprint(
            [r1, r2]
        )

    def test_predicate_logic_changes_fingerprint(self):
        # Two rules with identical printed text but different predicate
        # bodies must not collide (the serializer dumps both as opaque).
        x = h.var("x", I16)
        lhs, rhs = h.maximum(x, h.const(I16, 0)), x

        def pred_a(match, ctx):
            return ctx.upper_bounded(match.env["x"], 100)

        def pred_b(match, ctx):
            return ctx.upper_bounded(match.env["x"], 200)

        ra = Rule("same-name", lhs, rhs, predicate=pred_a)
        rb = Rule("same-name", lhs, rhs, predicate=pred_b)
        assert rule_fingerprint(ra) != rule_fingerprint(rb)
        assert predicate_fingerprint(pred_a) != predicate_fingerprint(
            pred_b
        )

    def test_lift_strategy_is_a_semantic_input(self):
        # Greedy and e-graph lifts can produce different programs from
        # identical rules, so their fingerprints must never collide.
        greedy = pipeline_rules_fingerprint("arm-neon")
        egraph = pipeline_rules_fingerprint(
            "arm-neon", lift_strategy="egraph"
        )
        assert greedy != egraph
        assert greedy == pipeline_rules_fingerprint(
            "arm-neon", lift_strategy="greedy"
        )

    def test_strategies_never_share_cache_entries(self, tmp_path):
        # One cell, two strategies: both runs must store fresh entries
        # (different keys), and re-running each strategy must hit its
        # own entry — greedy and e-graph results never cross-contaminate.
        cache = ResultCache(root=str(tmp_path))
        greedy = TaskSpec("coverage", ("add", "arm-neon"), (True, "greedy"))
        egraph = TaskSpec("coverage", ("add", "arm-neon"), (True, "egraph"))
        first = run_tasks([greedy], cache=cache)[0]
        second = run_tasks([egraph], cache=cache)[0]
        assert not first.cached and not second.cached
        assert cache.stores == 2
        assert run_tasks([greedy], cache=cache)[0].cached
        assert run_tasks([egraph], cache=cache)[0].cached

    def test_legacy_params_tuple_means_greedy(self):
        # Pre-PR-6 specs omit the strategy member; they must still run
        # and produce exactly the explicit-greedy result.  (Their cache
        # keys differ — the key embeds the raw params tuple — so this is
        # a behavioural guarantee, not key aliasing.)
        legacy = run_tasks(
            [TaskSpec("coverage", ("add", "arm-neon"), (True,))]
        )[0]
        explicit = run_tasks(
            [TaskSpec("coverage", ("add", "arm-neon"), (True, "greedy"))]
        )[0]
        assert legacy.ok and explicit.ok
        # Counters (rule fires, index hits) are deterministic; the
        # pass_seconds histograms are wall clock, so compare counters.
        assert legacy.value["counters"] == explicit.value["counters"]

    def test_eval_backend_is_a_semantic_input(self):
        # Closure and numpy evaluation are proven lane-exact, but the
        # numpy tier's arithmetic is pinned to the installed numpy, so
        # verdicts produced under different backends (or different numpy
        # versions) must never collide.
        pytest.importorskip("numpy")
        closure = eval_backend_fingerprint("closure")
        assert closure == eval_backend_fingerprint("closure")
        assert closure != eval_backend_fingerprint("numpy")
        assert closure != eval_backend_fingerprint("auto")
        # None resolves through the process default, never crashes.
        assert eval_backend_fingerprint(None)

    def test_eval_backends_never_share_verify_entries(self, tmp_path):
        # One verify-rule cell, two backends: each run stores a fresh
        # entry and re-running the same backend hits its own entry.
        pytest.importorskip("numpy")
        cache = ResultCache(root=str(tmp_path))
        budget = (0, 2, 2, 50)  # seed, type combos, const samples, points
        closure = TaskSpec(
            "verify-rule", ("lifting-hand", "lift-widening-add"),
            budget + ("closure",),
        )
        npy = TaskSpec(
            "verify-rule", ("lifting-hand", "lift-widening-add"),
            budget + ("numpy",),
        )
        first = run_tasks([closure], cache=cache)[0]
        second = run_tasks([npy], cache=cache)[0]
        assert first.ok and second.ok
        assert not first.cached and not second.cached
        assert cache.stores == 2
        assert run_tasks([closure], cache=cache)[0].cached
        assert run_tasks([npy], cache=cache)[0].cached
        # Lane-exactness: both backends reach the same verdict.
        assert first.value == second.value

    def test_legacy_verify_params_mean_closure(self):
        # Pre-PR-8 specs omit the backend member; they must still run
        # and produce exactly the explicit-closure verdict.
        budget = (0, 2, 2, 50)
        legacy = run_tasks(
            [TaskSpec("verify-rule", ("lifting-hand", "lift-widening-add"),
                      budget)]
        )[0]
        explicit = run_tasks(
            [TaskSpec("verify-rule", ("lifting-hand", "lift-widening-add"),
                      budget + ("closure",))]
        )[0]
        assert legacy.ok and explicit.ok
        assert legacy.value == explicit.value

    def test_expr_fingerprint_distinguishes_types(self):
        assert expr_fingerprint(h.var("x", I16)) != expr_fingerprint(
            h.var("x", U8)
        )

    def test_fingerprints_stable_across_processes(self):
        # Bytecode-based fingerprints must not embed memory addresses:
        # the same rulebase hashed in a fresh interpreter gives the
        # same digest, or the on-disk cache could never hit.
        code = (
            "from repro.fabric import pipeline_rules_fingerprint;"
            "print(pipeline_rules_fingerprint('arm-neon'))"
        )
        runs = {
            subprocess.run(
                [sys.executable, "-c", code],
                capture_output=True,
                text=True,
                check=True,
                env={**os.environ, "PYTHONPATH": REPO_SRC},
            ).stdout.strip()
            for _ in range(2)
        }
        assert runs == {pipeline_rules_fingerprint("arm-neon")}


class TestConcurrentAccess:
    """A daemon shares one cache dir across racing processes and
    threads; the atomic tmp-file + rename discipline must guarantee a
    reader never observes a torn entry, whoever wins the race."""

    def test_racing_writers_leave_one_intact_entry(self, tmp_path):
        import threading

        cache = ResultCache(root=str(tmp_path))
        key = cache.key("t-echo", "contended")
        errors = []
        barrier = threading.Barrier(8)

        def write(i):
            try:
                barrier.wait()
                # Each writer stores a distinct (valid) payload.
                ResultCache(root=str(tmp_path)).put(
                    "t-echo", key, {"writer": i, "pad": "x" * 2000}
                )
            except Exception as exc:  # pragma: no cover - the failure
                errors.append(exc)

        threads = [
            threading.Thread(target=write, args=(i,)) for i in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        hit, value = cache.get("t-echo", key)
        assert hit, "racing writers must still leave a readable entry"
        # Whole-payload integrity: one writer's value, never a splice.
        assert value["pad"] == "x" * 2000
        assert value["writer"] in range(8)
        # No leaked tmp files from the losing writers.
        leftovers = [
            f
            for _dirpath, _dirs, files in os.walk(tmp_path)
            for f in files
            if f.endswith(".tmp")
        ]
        assert leftovers == []

    def test_reader_during_write_never_sees_a_torn_entry(self, tmp_path):
        import threading

        cache = ResultCache(root=str(tmp_path))
        key = cache.key("t-echo", "hot")
        payload = {"pad": "y" * 5000}
        cache.put("t-echo", key, payload)
        stop = threading.Event()
        torn = []

        def rewrite():
            w = ResultCache(root=str(tmp_path))
            while not stop.is_set():
                w.put("t-echo", key, payload)

        writer = threading.Thread(target=rewrite)
        writer.start()
        try:
            reader = ResultCache(root=str(tmp_path))
            for _ in range(300):
                hit, value = reader.get("t-echo", key)
                # Under os.replace the entry is always whole: a miss or
                # a partial payload here would be a torn read.
                if not hit or value != payload:
                    torn.append(value)
        finally:
            stop.set()
            writer.join()
        assert torn == []


class TestSchedulerIntegration:
    def test_cacheable_task_round_trip(self, tmp_path):
        cache = ResultCache(root=str(tmp_path))
        spec = TaskSpec("coverage", ("add", "arm-neon"), (True,))
        first = run_tasks([spec], cache=cache)[0]
        assert first.ok and not first.cached and cache.stores == 1
        second = run_tasks([spec], cache=cache)[0]
        assert second.ok and second.cached
        assert second.value == first.value

    def test_hit_across_processes(self, tmp_path):
        # Seed the cache here, then resolve the same cell in a fresh
        # interpreter: content addressing must line up bit-for-bit.
        cache = ResultCache(root=str(tmp_path))
        seeded = run_tasks(
            [TaskSpec("coverage", ("add", "arm-neon"), (True,))],
            cache=cache,
        )[0]
        assert not seeded.cached
        code = (
            "from repro.fabric import ResultCache, TaskSpec, run_tasks;"
            f"c = ResultCache(root={str(tmp_path)!r});"
            "r = run_tasks([TaskSpec('coverage', ('add', 'arm-neon'),"
            " (True,))], cache=c)[0];"
            "print('cached' if r.cached else 'recomputed')"
        )
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            check=True,
            env={**os.environ, "PYTHONPATH": REPO_SRC},
        ).stdout.strip()
        assert out == "cached"

    def test_corrupt_entry_is_a_miss_not_a_crash(self, tmp_path):
        cache = ResultCache(root=str(tmp_path))
        spec = TaskSpec("coverage", ("add", "arm-neon"), (True,))
        baseline = run_tasks([spec], cache=cache)[0]
        (entry,) = _entry_files(tmp_path)
        with open(entry, "w") as fh:
            fh.write('{"kind": "coverage", "key": "trunca')
        rerun = run_tasks([spec], cache=ResultCache(root=str(tmp_path)))[0]
        assert rerun.ok and not rerun.cached
        assert rerun.value["counters"] == baseline.value["counters"]

    def test_mismatched_entry_key_is_a_miss(self, tmp_path):
        cache = ResultCache(root=str(tmp_path))
        spec = TaskSpec("coverage", ("add", "arm-neon"), (True,))
        run_tasks([spec], cache=cache)
        (entry,) = _entry_files(tmp_path)
        payload = json.load(open(entry))
        payload["key"] = "0" * 64  # valid JSON, wrong identity
        json.dump(payload, open(entry, "w"))
        fresh = ResultCache(root=str(tmp_path))
        rerun = run_tasks([spec], cache=fresh)[0]
        assert rerun.ok and not rerun.cached and fresh.misses == 1

    def test_noncacheable_kind_never_touches_the_cache(self, tmp_path):
        cache = ResultCache(root=str(tmp_path))
        spec = TaskSpec("compile-time", ("add", "arm-neon"), (1,))
        run_tasks([spec], cache=cache)
        assert cache.stores == 0 and cache.misses == 0
        assert _entry_files(tmp_path) == []
