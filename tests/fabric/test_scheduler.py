"""Scheduler contract: ordering, serial default, failure isolation."""

import os
import time

import pytest

from repro.fabric import TaskSpec, run_tasks
from repro.fabric.scheduler import job_kind
from repro.observe import MetricsRegistry, Tracer


# Test-only job kinds.  Registered at import time, so fork-started
# workers inherit them; the t- prefix keeps them out of real sweeps.
@job_kind("t-echo")
def _t_echo(spec):
    return list(spec.key)


@job_kind("t-jitter")
def _t_jitter(spec):
    # Even-indexed tasks finish last: completion order != input order.
    if int(spec.key[0]) % 2 == 0:
        time.sleep(0.05)
    return spec.key[0]


@job_kind("t-fail")
def _t_fail(spec):
    if spec.key[0] == "bad":
        raise ValueError("poisoned cell")
    return spec.key[0]


@job_kind("t-crash")
def _t_crash(spec):
    if spec.key[0] == "crash":
        os._exit(13)  # kill the worker without Python cleanup
    return spec.key[0]


class TestOrderingAndSerialDefault:
    def test_results_merge_in_input_order(self):
        specs = [TaskSpec("t-jitter", (str(i),)) for i in range(6)]
        results = run_tasks(specs, jobs=3)
        assert [r.value for r in results] == [str(i) for i in range(6)]
        assert all(r.ok for r in results)

    def test_jobs_one_runs_inline(self):
        results = run_tasks([TaskSpec("t-echo", ("a", "b"))], jobs=1)
        assert results[0].value == ["a", "b"]
        assert results[0].pid == os.getpid()

    def test_single_pending_task_never_pays_for_a_pool(self):
        # jobs>1 with one task still runs inline (same pid).
        results = run_tasks([TaskSpec("t-echo", ("x",))], jobs=4)
        assert results[0].pid == os.getpid()

    def test_parallel_equals_serial(self):
        specs = [TaskSpec("t-jitter", (str(i),)) for i in range(5)]
        serial = run_tasks(specs, jobs=1)
        parallel = run_tasks(specs, jobs=4)
        assert [(r.ok, r.value) for r in serial] == [
            (r.ok, r.value) for r in parallel
        ]

    def test_unknown_kind_names_the_options(self):
        with pytest.raises(KeyError, match="no-such-kind"):
            run_tasks([TaskSpec("no-such-kind", ("x",))])


class TestFailureIsolation:
    def test_raising_task_fails_alone_inline(self):
        specs = [
            TaskSpec("t-fail", ("ok1",)),
            TaskSpec("t-fail", ("bad",)),
            TaskSpec("t-fail", ("ok2",)),
        ]
        results = run_tasks(specs, jobs=1)
        assert [r.ok for r in results] == [True, False, True]
        assert "poisoned cell" in results[1].error
        assert results[0].value == "ok1" and results[2].value == "ok2"

    def test_raising_task_fails_alone_in_pool(self):
        specs = [
            TaskSpec("t-fail", ("ok1",)),
            TaskSpec("t-fail", ("bad",)),
            TaskSpec("t-fail", ("ok2",)),
        ]
        results = run_tasks(specs, jobs=2)
        assert [r.ok for r in results] == [True, False, True]
        assert "ValueError" in results[1].error

    def test_worker_crash_fails_only_its_cell(self):
        # os._exit kills the worker abruptly; the pool breaks, collateral
        # tasks are retried in fresh pools, only the crasher stays failed.
        specs = [
            TaskSpec("t-crash", ("a",)),
            TaskSpec("t-crash", ("crash",)),
            TaskSpec("t-crash", ("b",)),
            TaskSpec("t-crash", ("c",)),
        ]
        results = run_tasks(specs, jobs=2)
        by_key = {r.spec.key[0]: r for r in results}
        assert not by_key["crash"].ok
        assert all(by_key[k].ok for k in ("a", "b", "c"))
        assert [r.spec.key[0] for r in results] == ["a", "crash", "b", "c"]


class TestTelemetry:
    def test_metrics_counters_and_histograms(self):
        metrics = MetricsRegistry()
        specs = [
            TaskSpec("t-fail", ("ok1",)),
            TaskSpec("t-fail", ("bad",)),
        ]
        run_tasks(specs, jobs=1, metrics=metrics)
        assert metrics.counter_value(
            "fabric_tasks", kind="t-fail", outcome="ok"
        ) == 1
        assert metrics.counter_value(
            "fabric_tasks", kind="t-fail", outcome="failed"
        ) == 1
        hist = metrics.histogram("fabric_task_seconds", kind="t-fail")
        assert hist.count == 2

    def test_tracer_gets_one_span_per_task(self):
        tracer = Tracer()
        specs = [TaskSpec("t-echo", (str(i),)) for i in range(3)]
        run_tasks(specs, jobs=1, tracer=tracer)
        spans = [s for s in tracer.spans if s.name == "task:t-echo"]
        assert len(spans) == 3
        assert all(s.args["outcome"] == "ok" for s in spans)
        assert all(s.args["pid"] == os.getpid() for s in spans)


class TestWorkerPool:
    """The persistent pool behind ``run_tasks(..., pool=...)``."""

    def test_pool_is_reused_across_calls(self):
        from repro.fabric import WorkerPool

        specs = [TaskSpec("t-echo", (str(i),)) for i in range(4)]
        with WorkerPool(2) as pool:
            first_executor = pool.executor
            r1 = run_tasks(specs, pool=pool)
            r2 = run_tasks(specs, pool=pool)
            # Same executor object both times — no per-call rebuild.
            assert pool.executor is first_executor
        assert [r.value for r in r1] == [r.value for r in r2]
        assert all(r.ok for r in r1 + r2)

    def test_pooled_results_equal_one_shot(self):
        from repro.fabric import WorkerPool

        specs = [TaskSpec("t-jitter", (str(i),)) for i in range(6)]
        oneshot = run_tasks(specs, jobs=2)
        with WorkerPool(2) as pool:
            pooled = run_tasks(specs, pool=pool)
        assert [(r.ok, r.value) for r in pooled] == [
            (r.ok, r.value) for r in oneshot
        ]

    def test_pool_size_overrides_the_jobs_argument(self):
        from repro.fabric import WorkerPool

        specs = [TaskSpec("t-echo", (str(i),)) for i in range(4)]
        with WorkerPool(2) as pool:
            results = run_tasks(specs, jobs=1, pool=pool)
        # jobs=1 would have run inline; the pool's size wins.
        assert any(r.pid != os.getpid() for r in results)

    def test_warm_up_runs_once_in_the_parent(self):
        from repro.fabric import WorkerPool

        calls = []
        with WorkerPool(2, warm_up=lambda: calls.append(os.getpid())):
            pass
        assert calls == [os.getpid()]

    def test_pool_survives_a_worker_crash(self):
        from repro.fabric import WorkerPool

        with WorkerPool(2) as pool:
            crashed = run_tasks(
                [TaskSpec("t-crash", ("crash",)),
                 TaskSpec("t-crash", ("x",))],
                pool=pool,
            )
            by_key = {r.spec.key[0]: r for r in crashed}
            assert not by_key["crash"].ok
            assert by_key["x"].ok
            # The executor was rebuilt in place: the same pool handle
            # keeps dispatching (the daemon's crash-resilience story).
            again = run_tasks(
                [TaskSpec("t-echo", (str(i),)) for i in range(3)],
                pool=pool,
            )
            assert all(r.ok for r in again)

    def test_shut_down_pool_refuses_use(self):
        from repro.fabric import WorkerPool

        pool = WorkerPool(2)
        pool.shutdown()
        with pytest.raises(RuntimeError, match="shut down"):
            pool.executor

    def test_pool_needs_at_least_one_worker(self):
        from repro.fabric import WorkerPool

        with pytest.raises(ValueError):
            WorkerPool(0)
