"""Evaluation-harness tests: the figure generators produce verified,
paper-shaped data on representative subsets (full sweeps live in
benchmarks/)."""

import pytest

from repro.evaluation.ablation import ablate_one, run_ablation
from repro.evaluation.codegen_compare import (
    figure3_cases,
    run_codegen_comparison,
)
from repro.evaluation.compile_time import measure_one
from repro.evaluation.runtime import run_one, run_runtime_evaluation
from repro.targets import ARM, HVX, X86
from repro.workloads import by_name

SUBSET = ["sobel3x3", "add", "mul", "camera_pipe"]


class TestRuntimeHarness:
    def test_subset_sweep(self):
        ev = run_runtime_evaluation(
            workload_names=SUBSET, with_rake=False
        )
        assert len(ev.results) == len(SUBSET) * 3
        assert all(r.verified for r in ev.results)
        assert all(r.speedup >= 0.99 for r in ev.results)

    def test_hvx_64bit_substitution_marked(self):
        r = run_one(by_name("mul"), HVX, with_rake=False)
        assert r.llvm_substituted
        r2 = run_one(by_name("sobel3x3"), HVX, with_rake=False)
        assert not r2.llvm_substituted

    def test_rake_at_least_as_fast_as_pitchfork(self):
        for name in ("sobel3x3", "add"):
            r = run_one(by_name(name), HVX, with_rake=True)
            assert r.rake_cycles is not None
            assert r.rake_cycles <= r.pitchfork_cycles + 1e-9

    def test_geomean_and_table(self):
        ev = run_runtime_evaluation(workload_names=SUBSET, with_rake=False)
        g = ev.geomean_speedup("arm-neon")
        assert g > 1.0
        table = ev.format_table()
        assert "sobel3x3" in table and "geomean" in table

    def test_leave_one_out_never_beats_full(self):
        wl = by_name("add")
        from repro.pipeline import pitchfork_compile

        full = pitchfork_compile(wl.expr, HVX, var_bounds=wl.var_bounds)
        loo = pitchfork_compile(
            wl.expr,
            HVX,
            var_bounds=wl.var_bounds,
            exclude_sources={"synth:add"},
        )
        assert loo.cost().total >= full.cost().total


class TestAblationHarness:
    def test_subset(self):
        ev = run_ablation(workload_names=["add", "sobel3x3", "max_pool"])
        assert all(r.verified for r in ev.results)
        # add/HVX must show the big fused-rule effect
        add_hvx = next(
            r
            for r in ev.results
            if r.workload == "add" and r.target == "hexagon-hvx"
        )
        assert add_hvx.speedup > 2.0
        # max_pool gains nothing from synthesized rules
        mp = next(r for r in ev.results if r.workload == "max_pool")
        assert mp.speedup == pytest.approx(1.0)

    def test_hand_only_never_faster(self):
        for name in SUBSET:
            for target in (ARM, HVX):
                r = ablate_one(by_name(name), target)
                assert r.speedup >= 1.0 - 1e-9, (name, target.name)


class TestCompileTimeHarness:
    def test_measures_both_flows(self):
        r = measure_one(by_name("sobel3x3"), ARM, repeats=2)
        assert r.llvm_seconds > 0 and r.pitchfork_seconds > 0

    def test_softmax_compiles_faster_with_pitchfork(self):
        r = measure_one(by_name("softmax"), ARM, repeats=3)
        assert r.speedup > 1.0


class TestFig3Harness:
    def test_three_cases(self):
        cases = figure3_cases()
        assert [c.label for c in cases] == ["(a)", "(b)", "(c)"]

    def test_report_contains_listings(self):
        out = run_codegen_comparison([ARM])
        assert "PITCHFORK:" in out and "LLVM:" in out
        assert "umlal" in out
        assert "speedup" in out
