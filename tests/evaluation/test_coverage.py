"""Tests for the rule-coverage sweep (``python -m repro coverage``)."""

import json

import pytest

from repro.evaluation.coverage import run_coverage
from repro.targets import ARM


@pytest.fixture(scope="module")
def arm_report():
    """One small sweep shared by the module: two workloads, one target."""
    return run_coverage(
        workload_names=["sobel3x3", "add"], targets=[ARM]
    )


class TestRunCoverage:
    def test_enumerates_every_registered_rule(self, arm_report):
        from repro.lifting import HAND_RULES, SYNTHESIZED_RULES

        names = {r.name for r in arm_report.rows}
        for rule in list(HAND_RULES) + list(SYNTHESIZED_RULES):
            assert rule.name in names
        for rule in ARM.lowering_rules:
            assert rule.name in names
        rulesets = {r.ruleset for r in arm_report.rows}
        assert rulesets == {"lifting", "arm-neon"}

    def test_fire_counts_reflect_the_compiles(self, arm_report):
        fires = {r.name: r.fires for r in arm_report.rows}
        # sobel3x3 on ARM is the paper's running example: uabd fires.
        assert fires["arm-uabd"] >= 1
        assert fires["lift-extending-add"] >= 1

    def test_dead_rule_classification(self, arm_report):
        dead = {r.name for r in arm_report.dead}
        assert all(r.fires == 0 for r in arm_report.dead)
        # A two-workload sweep cannot cover the saturating-sub rules.
        assert "lift-saturating-sub" in dead
        hand_dead = {r.name for r in arm_report.dead_hand_rules}
        assert hand_dead <= dead
        assert all(r.is_hand for r in arm_report.dead_hand_rules)
        assert arm_report.ok is (not hand_dead)

    def test_sweep_parameters_recorded(self, arm_report):
        assert arm_report.workloads == ["add", "sobel3x3"]
        assert arm_report.targets == ["arm-neon"]
        assert arm_report.metrics is not None


class TestRendering:
    def test_format_table_summarizes(self, arm_report):
        text = arm_report.format_table()
        assert "rule coverage over 2 workloads x 1 targets" in text
        assert "-- lifting:" in text
        assert "-- arm-neon:" in text
        assert "coverage:" in text
        # Non-verbose output omits per-rule lines for live rules.
        assert "arm-uabd " not in text.replace("\n", " ")

    def test_format_table_verbose_lists_rules(self, arm_report):
        text = arm_report.format_table(verbose=True)
        assert "arm-uabd" in text
        assert "lift-extending-add" in text

    def test_to_json_round_trip(self, arm_report):
        data = json.loads(arm_report.to_json())
        assert data["targets"] == ["arm-neon"]
        assert len(data["rules"]) == len(arm_report.rows)
        assert set(data["dead_hand_rules"]) == {
            r.name for r in arm_report.dead_hand_rules
        }
        one = data["rules"][0]
        assert {"name", "source", "phase", "ruleset", "fires"} <= set(one)
